//! One function per table/figure of the paper.

use crate::table::{pct, ratio, Table};
use ctcp_core::{LatencyOverrides, Topology};
use ctcp_sim::{harmonic_mean, SimConfig, SimReport, Simulation, Strategy};
use ctcp_workload::Benchmark;
use std::fmt;
use std::str::FromStr;

/// Which paper artifact to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Table1,
    Table2,
    Table3,
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Table8,
    Table9,
    Table10,
    Fig8,
    Fig9,
    /// §5.3 ablations: Friendly-with-middle-bias and FDRT-intra-only.
    Ablation,
    /// §4 claim: fill-unit latencies up to 1000 cycles barely matter.
    FillLatency,
    /// Extension: trace-cache size sensitivity.
    TcSize,
    /// Extension: why trace selection matters — disable the
    /// backward-taken-branch trace terminator and watch assignments churn.
    TraceSelect,
}

impl ExperimentId {
    /// All experiments, in paper order.
    pub const ALL: [ExperimentId; 16] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Table3,
        ExperimentId::Fig6,
        ExperimentId::Table8,
        ExperimentId::Fig7,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Ablation,
        ExperimentId::FillLatency,
        ExperimentId::TcSize,
        ExperimentId::TraceSelect,
    ];
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Ablation => "ablation",
            ExperimentId::FillLatency => "fill-latency",
            ExperimentId::TcSize => "tc-size",
            ExperimentId::TraceSelect => "trace-select",
        };
        f.write_str(s)
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table1" => Ok(ExperimentId::Table1),
            "table2" => Ok(ExperimentId::Table2),
            "table3" => Ok(ExperimentId::Table3),
            "fig4" => Ok(ExperimentId::Fig4),
            "fig5" => Ok(ExperimentId::Fig5),
            "fig6" => Ok(ExperimentId::Fig6),
            "fig7" => Ok(ExperimentId::Fig7),
            "table8" => Ok(ExperimentId::Table8),
            "table9" => Ok(ExperimentId::Table9),
            "table10" => Ok(ExperimentId::Table10),
            "fig8" => Ok(ExperimentId::Fig8),
            "fig9" => Ok(ExperimentId::Fig9),
            "ablation" => Ok(ExperimentId::Ablation),
            "fill-latency" => Ok(ExperimentId::FillLatency),
            "tc-size" => Ok(ExperimentId::TcSize),
            "trace-select" => Ok(ExperimentId::TraceSelect),
            other => Err(format!("unknown experiment id: {other}")),
        }
    }
}

/// Run options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Instructions per simulation for the six focus benchmarks.
    pub max_insts: u64,
    /// Instructions per simulation for the suite-wide Figure 9 runs.
    pub suite_insts: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_insts: 300_000,
            suite_insts: 120_000,
        }
    }
}

fn base_config(max_insts: u64, strategy: Strategy) -> SimConfig {
    SimConfig {
        strategy,
        max_insts,
        ..SimConfig::default()
    }
}

fn run(bench: &Benchmark, config: SimConfig) -> SimReport {
    let program = bench.program();
    Simulation::new(&program, config).run()
}

fn run_strategy(bench: &Benchmark, strategy: Strategy, max_insts: u64) -> SimReport {
    run(bench, base_config(max_insts, strategy))
}

/// Runs `id` and returns its rendered report (paper value columns
/// included where the paper printed exact numbers).
pub fn run_experiment(id: ExperimentId, opts: RunOptions) -> String {
    match id {
        ExperimentId::Table1 => table1(opts),
        ExperimentId::Table2 => table2(opts),
        ExperimentId::Table3 => table3(opts),
        ExperimentId::Fig4 => fig4(opts),
        ExperimentId::Fig5 => fig5(opts),
        ExperimentId::Fig6 => fig6(opts),
        ExperimentId::Fig7 => fig7(opts),
        ExperimentId::Table8 => table8(opts),
        ExperimentId::Table9 => table9(opts),
        ExperimentId::Table10 => table10(opts),
        ExperimentId::Fig8 => fig8(opts),
        ExperimentId::Fig9 => fig9(opts),
        ExperimentId::Ablation => ablation(opts),
        ExperimentId::FillLatency => fill_latency(opts),
        ExperimentId::TcSize => tc_size(opts),
        ExperimentId::TraceSelect => trace_select(opts),
    }
}

const FOCUS_PAPER_TABLE1: [(&str, f64, f64); 6] = [
    // (name, % TC instr, trace size) — paper Table 1
    ("bzip2", 0.9822, 14.7),
    ("eon", 0.8826, 12.4),
    ("gzip", 0.9683, 13.8),
    ("perlbmk", 0.9281, 13.2),
    ("twolf", 0.8407, 11.5),
    ("vpr", 0.8991, 12.9),
];

fn table1(opts: RunOptions) -> String {
    let mut t = Table::new(vec![
        "bench",
        "%TC (paper)",
        "%TC (ours)",
        "size (paper)",
        "size (ours)",
    ]);
    for b in Benchmark::spec_focus() {
        let r = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let paper = FOCUS_PAPER_TABLE1
            .iter()
            .find(|(n, _, _)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            pct(paper.1),
            pct(r.tc_inst_fraction()),
            format!("{:.1}", paper.2),
            format!("{:.1}", r.avg_trace_size()),
        ]);
    }
    format!("Table 1: trace cache characteristics\n{}", t.render())
}

const PAPER_TABLE2: [(&str, f64, f64); 6] = [
    ("bzip2", 0.8618, 0.2969),
    ("eon", 0.8658, 0.3540),
    ("gzip", 0.8094, 0.2438),
    ("perlbmk", 0.8611, 0.2776),
    ("twolf", 0.7858, 0.2395),
    ("vpr", 0.8232, 0.2584),
];

fn table2(opts: RunOptions) -> String {
    let mut t = Table::new(vec![
        "bench",
        "crit (paper)",
        "crit (ours)",
        "inter-trace (paper)",
        "inter-trace (ours)",
    ]);
    for b in Benchmark::spec_focus() {
        let r = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let paper = PAPER_TABLE2
            .iter()
            .find(|(n, _, _)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            pct(paper.1),
            pct(r.fwd.critical_fraction()),
            pct(paper.2),
            pct(r.fwd.inter_trace_fraction()),
        ]);
    }
    format!(
        "Table 2: critical data forwarding dependencies\n{}",
        t.render()
    )
}

const PAPER_TABLE3: [(&str, f64, f64, f64, f64); 6] = [
    // (name, all RS1, all RS2, crit-inter RS1, crit-inter RS2)
    ("bzip2", 0.9741, 0.9766, 0.8930, 0.9117),
    ("eon", 0.9383, 0.8984, 0.8579, 0.7334),
    ("gzip", 0.9814, 0.9902, 0.9293, 0.9604),
    ("perlbmk", 0.9778, 0.9379, 0.9083, 0.7927),
    ("twolf", 0.9669, 0.9078, 0.8709, 0.7640),
    ("vpr", 0.9853, 0.9606, 0.9564, 0.9167),
];

fn table3(opts: RunOptions) -> String {
    let mut t = Table::new(vec![
        "bench",
        "RS1 (paper/ours)",
        "RS2 (paper/ours)",
        "inter RS1 (paper/ours)",
        "inter RS2 (paper/ours)",
    ]);
    for b in Benchmark::spec_focus() {
        let r = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let p = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(p.1), pct(r.repeat_all[0])),
            format!("{} / {}", pct(p.2), pct(r.repeat_all[1])),
            format!("{} / {}", pct(p.3), pct(r.repeat_critical_inter[0])),
            format!("{} / {}", pct(p.4), pct(r.repeat_critical_inter[1])),
        ]);
    }
    format!(
        "Table 3: frequency of repeated forwarding producers\n{}",
        t.render()
    )
}

fn fig4(opts: RunOptions) -> String {
    // Paper average: 44% RF, 31% RS1, 25% RS2.
    let mut t = Table::new(vec!["bench", "from RF", "from RS1", "from RS2"]);
    for b in Benchmark::spec_focus() {
        let r = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let (rf, rs1, rs2) = r.fwd.critical_source_distribution();
        t.row(vec![b.name.to_string(), pct(rf), pct(rs1), pct(rs2)]);
    }
    format!(
        "Figure 4: source of most critical input\n\
         (paper averages: RF 44%, RS1 31%, RS2 25%)\n{}",
        t.render()
    )
}

fn fig5(opts: RunOptions) -> String {
    let variants: [(&str, LatencyOverrides, bool); 5] = [
        (
            "No Fwd Lat",
            LatencyOverrides {
                no_forward_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Crit Fwd Lat",
            LatencyOverrides {
                no_critical_forward_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Intra-Trace Lat",
            LatencyOverrides {
                no_intra_trace_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Inter-Trace Lat",
            LatencyOverrides {
                no_inter_trace_latency: true,
                ..Default::default()
            },
            false,
        ),
        ("No RF Lat", LatencyOverrides::default(), true),
    ];
    let mut header = vec!["bench".to_string()];
    header.extend(variants.iter().map(|(n, _, _)| n.to_string()));
    let mut t = Table::new(header);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for b in Benchmark::spec_focus() {
        let base = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let mut cells = vec![b.name.to_string()];
        for (i, (_, ov, rf0)) in variants.iter().enumerate() {
            let mut c = base_config(opts.max_insts, Strategy::Baseline);
            c.engine.overrides = *ov;
            if *rf0 {
                c.engine.rf_latency = 0;
            }
            let r = run(&b, c);
            let sp = r.speedup_over(&base);
            sums[i].push(sp);
            cells.push(ratio(sp));
        }
        t.row(cells);
    }
    let mut hm = vec!["HM".to_string()];
    for s in &sums {
        hm.push(ratio(harmonic_mean(s)));
    }
    t.row(hm);
    format!(
        "Figure 5: speedup removing dependency latencies\n\
         (paper HMs: NoFwd 1.418, NoCrit 1.372, NoIntra 1.177, NoInter 1.155, NoRF ~1.0)\n{}",
        t.render()
    )
}

/// The Figure 6 strategy set.
fn fig6_strategies() -> Vec<Strategy> {
    vec![
        Strategy::IssueTime { latency: 0 },
        Strategy::IssueTime { latency: 4 },
        Strategy::Fdrt { pinning: true },
        Strategy::Friendly { middle_bias: false },
    ]
}

fn fig6(opts: RunOptions) -> String {
    let strategies = fig6_strategies();
    let mut header = vec!["bench".to_string()];
    header.extend(strategies.iter().map(|s| s.name()));
    let mut t = Table::new(header);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    for b in Benchmark::spec_focus() {
        let base = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let mut cells = vec![b.name.to_string()];
        for (i, s) in strategies.iter().enumerate() {
            let r = run_strategy(&b, *s, opts.max_insts);
            let sp = r.speedup_over(&base);
            sums[i].push(sp);
            cells.push(ratio(sp));
        }
        t.row(cells);
    }
    let mut hm = vec!["HM".to_string()];
    for s in &sums {
        hm.push(ratio(harmonic_mean(s)));
    }
    t.row(hm);
    format!(
        "Figure 6: speedup by cluster assignment strategy\n\
         (paper HMs: issue-time(0) 1.172, issue-time(4) ~1.10, FDRT 1.115, Friendly 1.031)\n{}",
        t.render()
    )
}

const PAPER_TABLE8A: [(&str, f64, f64, f64); 6] = [
    ("bzip2", 0.3979, 0.6084, 0.7954),
    ("eon", 0.3373, 0.5283, 0.5135),
    ("gzip", 0.3294, 0.5391, 0.5825),
    ("perlbmk", 0.4495, 0.5836, 0.6201),
    ("twolf", 0.4783, 0.5691, 0.5892),
    ("vpr", 0.3867, 0.5870, 0.5958),
];

const PAPER_TABLE8B: [(&str, f64, f64, f64); 6] = [
    ("bzip2", 0.99, 0.59, 0.28),
    ("eon", 1.09, 0.73, 0.71),
    ("gzip", 1.14, 0.73, 0.62),
    ("perlbmk", 0.85, 0.63, 0.55),
    ("twolf", 0.79, 0.65, 0.60),
    ("vpr", 0.97, 0.61, 0.57),
];

fn table8(opts: RunOptions) -> String {
    let mut a = Table::new(vec![
        "bench",
        "base (paper/ours)",
        "friendly (paper/ours)",
        "fdrt (paper/ours)",
    ]);
    let mut bt = Table::new(vec![
        "bench",
        "base (paper/ours)",
        "friendly (paper/ours)",
        "fdrt (paper/ours)",
    ]);
    for b in Benchmark::spec_focus() {
        let base = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let fr = run_strategy(&b, Strategy::Friendly { middle_bias: false }, opts.max_insts);
        let fd = run_strategy(&b, Strategy::Fdrt { pinning: true }, opts.max_insts);
        let pa = PAPER_TABLE8A
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        let pb = PAPER_TABLE8B
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        a.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(pa.1), pct(base.fwd.intra_cluster_fraction())),
            format!("{} / {}", pct(pa.2), pct(fr.fwd.intra_cluster_fraction())),
            format!("{} / {}", pct(pa.3), pct(fd.fwd.intra_cluster_fraction())),
        ]);
        bt.row(vec![
            b.name.to_string(),
            format!("{:.2} / {:.2}", pb.1, base.fwd.mean_distance()),
            format!("{:.2} / {:.2}", pb.2, fr.fwd.mean_distance()),
            format!("{:.2} / {:.2}", pb.3, fd.fwd.mean_distance()),
        ]);
    }
    format!(
        "Table 8a: intra-cluster forwarding of critical inputs\n{}\n\
         Table 8b: average data forwarding distance\n{}",
        a.render(),
        bt.render()
    )
}

fn fig7(opts: RunOptions) -> String {
    // Paper averages: A 37%, B 18%, C 9%, D 11%, E ~24%, skipped <1%.
    let mut t = Table::new(vec!["bench", "A", "B", "C", "D", "E", "skipped"]);
    for b in Benchmark::spec_focus() {
        let r = run_strategy(&b, Strategy::Fdrt { pinning: true }, opts.max_insts);
        let d = r.fdrt.expect("fdrt stats").option_distribution();
        t.row(vec![
            b.name.to_string(),
            pct(d[0]),
            pct(d[1]),
            pct(d[2]),
            pct(d[3]),
            pct(d[4]),
            pct(d[5]),
        ]);
    }
    format!(
        "Figure 7: FDRT assignment option distribution\n\
         (paper averages: A 37%, B 18%, C 9%, D 11%, E 24%, skipped <1%)\n{}",
        t.render()
    )
}

const PAPER_TABLE9: [(&str, f64, f64); 6] = [
    // (name, pinning, no pinning) — all-instruction migration
    ("bzip2", 0.0035, 0.0098),
    ("eon", 0.0594, 0.0827),
    ("gzip", 0.0597, 0.0826),
    ("perlbmk", 0.0377, 0.0359),
    ("twolf", 0.0508, 0.0892),
    ("vpr", 0.0436, 0.0477),
];

fn table9(opts: RunOptions) -> String {
    let mut t = Table::new(vec![
        "bench",
        "pin (paper/ours)",
        "nopin (paper/ours)",
        "chain red. (ours)",
    ]);
    for b in Benchmark::spec_focus() {
        let pin = run_strategy(&b, Strategy::Fdrt { pinning: true }, opts.max_insts);
        let nopin = run_strategy(&b, Strategy::Fdrt { pinning: false }, opts.max_insts);
        let sp = pin.fdrt.expect("stats");
        let sn = nopin.fdrt.expect("stats");
        let p = PAPER_TABLE9
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        let chain_red = if sn.chain_migration_rate() > 0.0 {
            1.0 - sp.chain_migration_rate() / sn.chain_migration_rate()
        } else {
            0.0
        };
        t.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(p.1), pct(sp.migration_rate())),
            format!("{} / {}", pct(p.2), pct(sn.migration_rate())),
            pct(chain_red),
        ]);
    }
    format!(
        "Table 9: instruction cluster migration (paper chain-migration reduction: 41%)\n{}",
        t.render()
    )
}

const PAPER_TABLE10: [(&str, f64, f64); 6] = [
    ("bzip2", 0.7955, 0.6669),
    ("eon", 0.4972, 0.5088),
    ("gzip", 0.5603, 0.5503),
    ("perlbmk", 0.6532, 0.6536),
    ("twolf", 0.5751, 0.5713),
    ("vpr", 0.5701, 0.5634),
];

fn table10(opts: RunOptions) -> String {
    let mut t = Table::new(vec!["bench", "pin (paper/ours)", "nopin (paper/ours)"]);
    for b in Benchmark::spec_focus() {
        let pin = run_strategy(&b, Strategy::Fdrt { pinning: true }, opts.max_insts);
        let nopin = run_strategy(&b, Strategy::Fdrt { pinning: false }, opts.max_insts);
        let p = PAPER_TABLE10
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        t.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(p.1), pct(pin.fwd.intra_cluster_fraction())),
            format!("{} / {}", pct(p.2), pct(nopin.fwd.intra_cluster_fraction())),
        ]);
    }
    format!(
        "Table 10: intra-cluster critical forwarding, pinning vs no pinning\n{}",
        t.render()
    )
}

fn fig8(opts: RunOptions) -> String {
    struct Variant {
        name: &'static str,
        issue_latency: u64,
        apply: fn(&mut SimConfig),
    }
    let variants = [
        Variant {
            name: "mesh network",
            issue_latency: 4,
            apply: |c| c.engine.geometry.topology = Topology::Ring,
        },
        Variant {
            name: "one-cycle fwd",
            issue_latency: 4,
            apply: |c| c.engine.hop_latency = 1,
        },
        Variant {
            name: "point-to-point (1 hop everywhere)",
            issue_latency: 4,
            apply: |c| c.engine.geometry.topology = Topology::FullyConnected,
        },
        Variant {
            name: "8-wide 2-cluster",
            issue_latency: 2,
            apply: |c| {
                c.engine.geometry.clusters = 2;
                c.engine.rename_width = 8;
                c.engine.retire_width = 8;
                c.engine.rob_entries = 64;
            },
        },
    ];
    let mut out = String::from(
        "Figure 8: robustness across cluster configurations\n\
         (speedups relative to each configuration's own baseline)\n",
    );
    for v in variants {
        let mut t = Table::new(vec!["bench", "fdrt", "friendly", "issue-time"]);
        let mut sums = [Vec::new(), Vec::new(), Vec::new()];
        for b in Benchmark::spec_focus() {
            let mut bc = base_config(opts.max_insts, Strategy::Baseline);
            (v.apply)(&mut bc);
            let base = run(&b, bc);
            let strategies = [
                Strategy::Fdrt { pinning: true },
                Strategy::Friendly { middle_bias: false },
                Strategy::IssueTime {
                    latency: v.issue_latency,
                },
            ];
            let mut cells = vec![b.name.to_string()];
            for (i, s) in strategies.iter().enumerate() {
                let mut c = base_config(opts.max_insts, *s);
                (v.apply)(&mut c);
                let r = run(&b, c);
                let sp = r.speedup_over(&base);
                sums[i].push(sp);
                cells.push(ratio(sp));
            }
            t.row(cells);
        }
        t.row(vec![
            "HM".to_string(),
            ratio(harmonic_mean(&sums[0])),
            ratio(harmonic_mean(&sums[1])),
            ratio(harmonic_mean(&sums[2])),
        ]);
        out.push_str(&format!("\n[{}]\n{}", v.name, t.render()));
    }
    out
}

fn fig9(opts: RunOptions) -> String {
    let strategies = fig6_strategies();
    let mut out = String::from(
        "Figure 9: suite-wide speedups\n\
         (paper HMs — SPECint: FDRT 1.071, issue-time 1.038, Friendly 1.019;\n\
          MediaBench: FDRT 1.082, issue-time(0) 1.042, issue-time 1.017, Friendly 1.037)\n",
    );
    for (suite_name, suite) in [
        ("SPECint2000", Benchmark::spec_all()),
        ("MediaBench", Benchmark::mediabench()),
    ] {
        let mut header = vec!["bench".to_string()];
        header.extend(strategies.iter().map(|s| s.name()));
        let mut t = Table::new(header);
        let mut sums: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
        for b in &suite {
            let base = run_strategy(b, Strategy::Baseline, opts.suite_insts);
            let mut cells = vec![b.name.to_string()];
            for (i, s) in strategies.iter().enumerate() {
                let r = run_strategy(b, *s, opts.suite_insts);
                let sp = r.speedup_over(&base);
                sums[i].push(sp);
                cells.push(ratio(sp));
            }
            t.row(cells);
        }
        let mut hm = vec!["HM".to_string()];
        for s in &sums {
            hm.push(ratio(harmonic_mean(s)));
        }
        t.row(hm);
        out.push_str(&format!("\n[{suite_name}]\n{}", t.render()));
    }
    out
}

fn ablation(opts: RunOptions) -> String {
    let strategies = [
        Strategy::Friendly { middle_bias: false },
        Strategy::Friendly { middle_bias: true },
        Strategy::FdrtIntraOnly,
        Strategy::Fdrt { pinning: true },
    ];
    let mut header = vec!["bench".to_string()];
    header.extend(strategies.iter().map(|s| s.name()));
    let mut t = Table::new(header);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    for b in Benchmark::spec_focus() {
        let base = run_strategy(&b, Strategy::Baseline, opts.max_insts);
        let mut cells = vec![b.name.to_string()];
        for (i, s) in strategies.iter().enumerate() {
            let r = run_strategy(&b, *s, opts.max_insts);
            let sp = r.speedup_over(&base);
            sums[i].push(sp);
            cells.push(ratio(sp));
        }
        t.row(cells);
    }
    let mut hm = vec!["HM".to_string()];
    for s in &sums {
        hm.push(ratio(harmonic_mean(s)));
    }
    t.row(hm);
    format!(
        "§5.3 ablations\n\
         (paper: Friendly 1.031, Friendly-middle 1.047, FDRT-intra-only 1.057, FDRT 1.115)\n{}",
        t.render()
    )
}

fn fill_latency(opts: RunOptions) -> String {
    let latencies = [3u64, 10, 100, 1000];
    let mut header = vec!["bench".to_string()];
    header.extend(latencies.iter().map(|l| format!("lat {l}")));
    let mut t = Table::new(header);
    for b in Benchmark::spec_focus() {
        let mut cells = vec![b.name.to_string()];
        let mut reference = None;
        for &lat in &latencies {
            let mut c = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
            c.fill.latency = lat;
            let r = run(&b, c);
            let base = *reference.get_or_insert(r.cycles);
            cells.push(ratio(base as f64 / r.cycles as f64));
        }
        t.row(cells);
    }
    format!(
        "Fill-unit latency sweep (FDRT performance relative to 3-cycle fill)
         (paper §4: a fill latency of 1000 cycles does not significantly
          impact FDRT performance)
{}",
        t.render()
    )
}

fn tc_size(opts: RunOptions) -> String {
    let sizes = [64usize, 256, 1024, 4096];
    let mut header = vec!["bench".to_string()];
    for s in sizes {
        header.push(format!("{s}e ipc"));
        header.push(format!("{s}e tc%"));
    }
    let mut t = Table::new(header);
    for b in Benchmark::spec_focus() {
        let mut cells = vec![b.name.to_string()];
        for &entries in &sizes {
            let mut c = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
            c.trace_cache.entries = entries;
            let r = run(&b, c);
            cells.push(ratio(r.ipc));
            cells.push(pct(r.tc_inst_fraction()));
        }
        t.row(cells);
    }
    format!(
        "Trace-cache size sensitivity (FDRT; Table 7 baseline is 1024 entries)
{}",
        t.render()
    )
}

fn trace_select(opts: RunOptions) -> String {
    let mut t = Table::new(vec![
        "bench",
        "ipc (loop-aligned)",
        "ipc (free-running)",
        "migration (aligned)",
        "migration (free)",
    ]);
    for b in Benchmark::spec_focus() {
        let aligned = run(&b, base_config(opts.max_insts, Strategy::Fdrt { pinning: true }));
        let mut c = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
        c.fill.end_at_backward_branch = false;
        let free = run(&b, c);
        let ma = aligned.fdrt.expect("stats").migration_rate();
        let mf = free.fdrt.expect("stats").migration_rate();
        t.row(vec![
            b.name.to_string(),
            ratio(aligned.ipc),
            ratio(free.ipc),
            pct(ma),
            pct(mf),
        ]);
    }
    format!(
        "Trace-selection ablation: ending traces at loop-back edges
         (without loop alignment, 16-instruction trace windows precess
          around loops, the same static instruction lands in several
          overlapping trace families, and retire-time assignments churn —
          see DESIGN.md §5)
{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for id in ExperimentId::ALL {
            let s = id.to_string();
            assert_eq!(s.parse::<ExperimentId>().unwrap(), id);
        }
        assert!("bogus".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn table1_runs_quickly() {
        let out = run_experiment(
            ExperimentId::Table1,
            RunOptions {
                max_insts: 4_000,
                suite_insts: 2_000,
            },
        );
        assert!(out.contains("bzip2"));
        assert!(out.contains("Table 1"));
    }
}
