//! One function per table/figure of the paper.
//!
//! Every experiment is two-phase: it first *describes* its grid of
//! simulation cells as [`Job`]s in a [`Batch`], hands the batch to a
//! [`Harness`] (worker pool + optional memoizing result store), and
//! then *renders* its table from the returned reports. Rendering only
//! reads reports by job index, so the output is byte-identical at any
//! `--jobs` level, and identical cells shared between experiments are
//! simulated once when a store is attached.

use crate::table::{pct, ratio, Table};
use ctcp_core::{LatencyOverrides, Topology};
use ctcp_harness::{Harness, Job, ResultStore};
use ctcp_isa::Program;
use ctcp_sim::{harmonic_mean, SimConfig, SimReport, Strategy};
use ctcp_workload::Benchmark;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which paper artifact to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Table1,
    Table2,
    Table3,
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Table8,
    Table9,
    Table10,
    Fig8,
    Fig9,
    /// §5.3 ablations: Friendly-with-middle-bias and FDRT-intra-only.
    Ablation,
    /// §4 claim: fill-unit latencies up to 1000 cycles barely matter.
    FillLatency,
    /// Extension: trace-cache size sensitivity.
    TcSize,
    /// Extension: why trace selection matters — disable the
    /// backward-taken-branch trace terminator and watch assignments churn.
    TraceSelect,
}

impl ExperimentId {
    /// All experiments, in paper order.
    pub const ALL: [ExperimentId; 16] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Table3,
        ExperimentId::Fig6,
        ExperimentId::Table8,
        ExperimentId::Fig7,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Ablation,
        ExperimentId::FillLatency,
        ExperimentId::TcSize,
        ExperimentId::TraceSelect,
    ];
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Ablation => "ablation",
            ExperimentId::FillLatency => "fill-latency",
            ExperimentId::TcSize => "tc-size",
            ExperimentId::TraceSelect => "trace-select",
        };
        f.write_str(s)
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table1" => Ok(ExperimentId::Table1),
            "table2" => Ok(ExperimentId::Table2),
            "table3" => Ok(ExperimentId::Table3),
            "fig4" => Ok(ExperimentId::Fig4),
            "fig5" => Ok(ExperimentId::Fig5),
            "fig6" => Ok(ExperimentId::Fig6),
            "fig7" => Ok(ExperimentId::Fig7),
            "table8" => Ok(ExperimentId::Table8),
            "table9" => Ok(ExperimentId::Table9),
            "table10" => Ok(ExperimentId::Table10),
            "fig8" => Ok(ExperimentId::Fig8),
            "fig9" => Ok(ExperimentId::Fig9),
            "ablation" => Ok(ExperimentId::Ablation),
            "fill-latency" => Ok(ExperimentId::FillLatency),
            "tc-size" => Ok(ExperimentId::TcSize),
            "trace-select" => Ok(ExperimentId::TraceSelect),
            other => Err(format!("unknown experiment id: {other}")),
        }
    }
}

/// Run options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Instructions per simulation for the six focus benchmarks.
    pub max_insts: u64,
    /// Instructions per simulation for the suite-wide Figure 9 runs.
    pub suite_insts: u64,
    /// Worker threads for the harness; `0` means available parallelism,
    /// `1` runs each cell in submission order on the calling thread.
    pub jobs: usize,
    /// Memoize finished cells through the on-disk result store
    /// (`target/ctcp-results/`).
    pub cache: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_insts: 300_000,
            suite_insts: 120_000,
            jobs: 0,
            cache: false,
        }
    }
}

impl RunOptions {
    /// Builds a harness honoring these options. A store that fails to
    /// open degrades to no memoization with a warning, never an abort.
    pub fn harness(&self) -> Harness {
        let mut h = Harness::new().jobs(self.jobs);
        if self.cache {
            match ResultStore::open(ResultStore::default_dir()) {
                Ok(store) => h = h.with_store(store),
                Err(e) => eprintln!("warning: result store unavailable ({e}); not caching"),
            }
        }
        h
    }
}

/// A grid of simulation cells accumulated by one experiment.
///
/// Programs are generated once per benchmark name and shared across
/// the batch via [`Arc`], so describing a 100-cell grid costs one
/// workload generation per distinct benchmark.
struct Batch {
    jobs: Vec<Job>,
    programs: HashMap<&'static str, Arc<Program>>,
}

impl Batch {
    fn new() -> Batch {
        Batch {
            jobs: Vec::new(),
            programs: HashMap::new(),
        }
    }

    /// Adds one cell and returns its index into [`Batch::run`]'s output.
    fn add(&mut self, bench: &Benchmark, config: SimConfig) -> usize {
        let program = self
            .programs
            .entry(bench.name)
            .or_insert_with(|| Arc::new(bench.program()));
        self.jobs
            .push(Job::new(bench.name, Arc::clone(program), config));
        self.jobs.len() - 1
    }

    /// Executes every cell; slot `i` of the result is cell `i`'s report.
    fn run(self, h: &mut Harness) -> Vec<SimReport> {
        h.run(&self.jobs)
    }
}

fn base_config(max_insts: u64, strategy: Strategy) -> SimConfig {
    SimConfig {
        strategy,
        max_insts,
        ..SimConfig::default()
    }
}

/// Runs `config` for each benchmark and returns the reports in order.
fn reports_for(h: &mut Harness, benches: &[Benchmark], config: SimConfig) -> Vec<SimReport> {
    let mut batch = Batch::new();
    for b in benches {
        batch.add(b, config);
    }
    batch.run(h)
}

/// The common "speedup over baseline" grid: one row per benchmark, one
/// column per named configuration, each cell the cycle ratio against
/// `base` on the same benchmark, plus a harmonic-mean footer row.
fn speedup_grid(
    h: &mut Harness,
    benches: &[Benchmark],
    columns: &[(String, SimConfig)],
    base: SimConfig,
) -> Table {
    let mut batch = Batch::new();
    let base_idx: Vec<usize> = benches.iter().map(|b| batch.add(b, base)).collect();
    let cell_idx: Vec<Vec<usize>> = benches
        .iter()
        .map(|b| columns.iter().map(|(_, c)| batch.add(b, *c)).collect())
        .collect();
    let reports = batch.run(h);

    let mut header = vec!["bench".to_string()];
    header.extend(columns.iter().map(|(n, _)| n.clone()));
    let mut t = Table::new(header);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    for (bi, b) in benches.iter().enumerate() {
        let base_r = &reports[base_idx[bi]];
        let mut cells = vec![b.name.to_string()];
        for (ci, &ji) in cell_idx[bi].iter().enumerate() {
            let sp = reports[ji].speedup_over(base_r);
            sums[ci].push(sp);
            cells.push(ratio(sp));
        }
        t.row(cells);
    }
    let mut hm = vec!["HM".to_string()];
    for s in &sums {
        hm.push(ratio(harmonic_mean(s)));
    }
    t.row(hm);
    t
}

/// Runs `id` with a private harness built from `opts` and returns its
/// rendered report.
pub fn run_experiment(id: ExperimentId, opts: RunOptions) -> String {
    run_experiment_in(id, opts, &mut opts.harness())
}

/// Runs `id` through an existing harness, so several experiments can
/// share one worker pool and result store (the `repro` binary does
/// this; identical cells across experiments then simulate only once).
pub fn run_experiment_in(id: ExperimentId, opts: RunOptions, h: &mut Harness) -> String {
    match id {
        ExperimentId::Table1 => table1(opts, h),
        ExperimentId::Table2 => table2(opts, h),
        ExperimentId::Table3 => table3(opts, h),
        ExperimentId::Fig4 => fig4(opts, h),
        ExperimentId::Fig5 => fig5(opts, h),
        ExperimentId::Fig6 => fig6(opts, h),
        ExperimentId::Fig7 => fig7(opts, h),
        ExperimentId::Table8 => table8(opts, h),
        ExperimentId::Table9 => table9(opts, h),
        ExperimentId::Table10 => table10(opts, h),
        ExperimentId::Fig8 => fig8(opts, h),
        ExperimentId::Fig9 => fig9(opts, h),
        ExperimentId::Ablation => ablation(opts, h),
        ExperimentId::FillLatency => fill_latency(opts, h),
        ExperimentId::TcSize => tc_size(opts, h),
        ExperimentId::TraceSelect => trace_select(opts, h),
    }
}

const FOCUS_PAPER_TABLE1: [(&str, f64, f64); 6] = [
    // (name, % TC instr, trace size) — paper Table 1
    ("bzip2", 0.9822, 14.7),
    ("eon", 0.8826, 12.4),
    ("gzip", 0.9683, 13.8),
    ("perlbmk", 0.9281, 13.2),
    ("twolf", 0.8407, 11.5),
    ("vpr", 0.8991, 12.9),
];

fn table1(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let reports = reports_for(h, &benches, base_config(opts.max_insts, Strategy::Baseline));
    let mut t = Table::new(vec![
        "bench",
        "%TC (paper)",
        "%TC (ours)",
        "size (paper)",
        "size (ours)",
    ]);
    for (b, r) in benches.iter().zip(&reports) {
        let paper = FOCUS_PAPER_TABLE1
            .iter()
            .find(|(n, _, _)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            pct(paper.1),
            pct(r.tc_inst_fraction()),
            format!("{:.1}", paper.2),
            format!("{:.1}", r.avg_trace_size()),
        ]);
    }
    format!("Table 1: trace cache characteristics\n{}", t.render())
}

const PAPER_TABLE2: [(&str, f64, f64); 6] = [
    ("bzip2", 0.8618, 0.2969),
    ("eon", 0.8658, 0.3540),
    ("gzip", 0.8094, 0.2438),
    ("perlbmk", 0.8611, 0.2776),
    ("twolf", 0.7858, 0.2395),
    ("vpr", 0.8232, 0.2584),
];

fn table2(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let reports = reports_for(h, &benches, base_config(opts.max_insts, Strategy::Baseline));
    let mut t = Table::new(vec![
        "bench",
        "crit (paper)",
        "crit (ours)",
        "inter-trace (paper)",
        "inter-trace (ours)",
    ]);
    for (b, r) in benches.iter().zip(&reports) {
        let paper = PAPER_TABLE2
            .iter()
            .find(|(n, _, _)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            pct(paper.1),
            pct(r.metrics.fwd.critical_fraction()),
            pct(paper.2),
            pct(r.metrics.fwd.inter_trace_fraction()),
        ]);
    }
    format!(
        "Table 2: critical data forwarding dependencies\n{}",
        t.render()
    )
}

const PAPER_TABLE3: [(&str, f64, f64, f64, f64); 6] = [
    // (name, all RS1, all RS2, crit-inter RS1, crit-inter RS2)
    ("bzip2", 0.9741, 0.9766, 0.8930, 0.9117),
    ("eon", 0.9383, 0.8984, 0.8579, 0.7334),
    ("gzip", 0.9814, 0.9902, 0.9293, 0.9604),
    ("perlbmk", 0.9778, 0.9379, 0.9083, 0.7927),
    ("twolf", 0.9669, 0.9078, 0.8709, 0.7640),
    ("vpr", 0.9853, 0.9606, 0.9564, 0.9167),
];

fn table3(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let reports = reports_for(h, &benches, base_config(opts.max_insts, Strategy::Baseline));
    let mut t = Table::new(vec![
        "bench",
        "RS1 (paper/ours)",
        "RS2 (paper/ours)",
        "inter RS1 (paper/ours)",
        "inter RS2 (paper/ours)",
    ]);
    for (b, r) in benches.iter().zip(&reports) {
        let p = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus benchmark");
        t.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(p.1), pct(r.metrics.repeat_all[0])),
            format!("{} / {}", pct(p.2), pct(r.metrics.repeat_all[1])),
            format!("{} / {}", pct(p.3), pct(r.metrics.repeat_critical_inter[0])),
            format!("{} / {}", pct(p.4), pct(r.metrics.repeat_critical_inter[1])),
        ]);
    }
    format!(
        "Table 3: frequency of repeated forwarding producers\n{}",
        t.render()
    )
}

fn fig4(opts: RunOptions, h: &mut Harness) -> String {
    // Paper average: 44% RF, 31% RS1, 25% RS2.
    let benches = Benchmark::spec_focus();
    let reports = reports_for(h, &benches, base_config(opts.max_insts, Strategy::Baseline));
    let mut t = Table::new(vec!["bench", "from RF", "from RS1", "from RS2"]);
    for (b, r) in benches.iter().zip(&reports) {
        let (rf, rs1, rs2) = r.metrics.fwd.critical_source_distribution();
        t.row(vec![b.name.to_string(), pct(rf), pct(rs1), pct(rs2)]);
    }
    format!(
        "Figure 4: source of most critical input\n\
         (paper averages: RF 44%, RS1 31%, RS2 25%)\n{}",
        t.render()
    )
}

fn fig5(opts: RunOptions, h: &mut Harness) -> String {
    let variants: [(&str, LatencyOverrides, bool); 5] = [
        (
            "No Fwd Lat",
            LatencyOverrides {
                no_forward_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Crit Fwd Lat",
            LatencyOverrides {
                no_critical_forward_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Intra-Trace Lat",
            LatencyOverrides {
                no_intra_trace_latency: true,
                ..Default::default()
            },
            false,
        ),
        (
            "No Inter-Trace Lat",
            LatencyOverrides {
                no_inter_trace_latency: true,
                ..Default::default()
            },
            false,
        ),
        ("No RF Lat", LatencyOverrides::default(), true),
    ];
    let columns: Vec<(String, SimConfig)> = variants
        .iter()
        .map(|(name, ov, rf0)| {
            let mut c = base_config(opts.max_insts, Strategy::Baseline);
            c.engine.overrides = *ov;
            if *rf0 {
                c.engine.rf_latency = 0;
            }
            (name.to_string(), c)
        })
        .collect();
    let t = speedup_grid(
        h,
        &Benchmark::spec_focus(),
        &columns,
        base_config(opts.max_insts, Strategy::Baseline),
    );
    format!(
        "Figure 5: speedup removing dependency latencies\n\
         (paper HMs: NoFwd 1.418, NoCrit 1.372, NoIntra 1.177, NoInter 1.155, NoRF ~1.0)\n{}",
        t.render()
    )
}

/// The Figure 6 strategy set.
fn fig6_strategies() -> Vec<Strategy> {
    vec![
        Strategy::IssueTime { latency: 0 },
        Strategy::IssueTime { latency: 4 },
        Strategy::Fdrt { pinning: true },
        Strategy::Friendly { middle_bias: false },
    ]
}

fn strategy_columns(strategies: &[Strategy], max_insts: u64) -> Vec<(String, SimConfig)> {
    strategies
        .iter()
        .map(|s| (s.name(), base_config(max_insts, *s)))
        .collect()
}

fn fig6(opts: RunOptions, h: &mut Harness) -> String {
    let columns = strategy_columns(&fig6_strategies(), opts.max_insts);
    let t = speedup_grid(
        h,
        &Benchmark::spec_focus(),
        &columns,
        base_config(opts.max_insts, Strategy::Baseline),
    );
    format!(
        "Figure 6: speedup by cluster assignment strategy\n\
         (paper HMs: issue-time(0) 1.172, issue-time(4) ~1.10, FDRT 1.115, Friendly 1.031)\n{}",
        t.render()
    )
}

const PAPER_TABLE8A: [(&str, f64, f64, f64); 6] = [
    ("bzip2", 0.3979, 0.6084, 0.7954),
    ("eon", 0.3373, 0.5283, 0.5135),
    ("gzip", 0.3294, 0.5391, 0.5825),
    ("perlbmk", 0.4495, 0.5836, 0.6201),
    ("twolf", 0.4783, 0.5691, 0.5892),
    ("vpr", 0.3867, 0.5870, 0.5958),
];

const PAPER_TABLE8B: [(&str, f64, f64, f64); 6] = [
    ("bzip2", 0.99, 0.59, 0.28),
    ("eon", 1.09, 0.73, 0.71),
    ("gzip", 1.14, 0.73, 0.62),
    ("perlbmk", 0.85, 0.63, 0.55),
    ("twolf", 0.79, 0.65, 0.60),
    ("vpr", 0.97, 0.61, 0.57),
];

fn table8(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<[usize; 3]> = benches
        .iter()
        .map(|b| {
            [
                batch.add(b, base_config(opts.max_insts, Strategy::Baseline)),
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Friendly { middle_bias: false }),
                ),
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Fdrt { pinning: true }),
                ),
            ]
        })
        .collect();
    let reports = batch.run(h);

    let mut a = Table::new(vec![
        "bench",
        "base (paper/ours)",
        "friendly (paper/ours)",
        "fdrt (paper/ours)",
    ]);
    let mut bt = Table::new(vec![
        "bench",
        "base (paper/ours)",
        "friendly (paper/ours)",
        "fdrt (paper/ours)",
    ]);
    for (b, idx) in benches.iter().zip(&cells) {
        let [base, fr, fd] = [&reports[idx[0]], &reports[idx[1]], &reports[idx[2]]];
        let pa = PAPER_TABLE8A
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        let pb = PAPER_TABLE8B
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        a.row(vec![
            b.name.to_string(),
            format!(
                "{} / {}",
                pct(pa.1),
                pct(base.metrics.fwd.intra_cluster_fraction())
            ),
            format!(
                "{} / {}",
                pct(pa.2),
                pct(fr.metrics.fwd.intra_cluster_fraction())
            ),
            format!(
                "{} / {}",
                pct(pa.3),
                pct(fd.metrics.fwd.intra_cluster_fraction())
            ),
        ]);
        bt.row(vec![
            b.name.to_string(),
            format!("{:.2} / {:.2}", pb.1, base.metrics.fwd.mean_distance()),
            format!("{:.2} / {:.2}", pb.2, fr.metrics.fwd.mean_distance()),
            format!("{:.2} / {:.2}", pb.3, fd.metrics.fwd.mean_distance()),
        ]);
    }
    format!(
        "Table 8a: intra-cluster forwarding of critical inputs\n{}\n\
         Table 8b: average data forwarding distance\n{}",
        a.render(),
        bt.render()
    )
}

fn fig7(opts: RunOptions, h: &mut Harness) -> String {
    // Paper averages: A 37%, B 18%, C 9%, D 11%, E ~24%, skipped <1%.
    let benches = Benchmark::spec_focus();
    let reports = reports_for(
        h,
        &benches,
        base_config(opts.max_insts, Strategy::Fdrt { pinning: true }),
    );
    let mut t = Table::new(vec!["bench", "A", "B", "C", "D", "E", "skipped"]);
    for (b, r) in benches.iter().zip(&reports) {
        let d = r.metrics.fdrt.expect("fdrt stats").option_distribution();
        t.row(vec![
            b.name.to_string(),
            pct(d[0]),
            pct(d[1]),
            pct(d[2]),
            pct(d[3]),
            pct(d[4]),
            pct(d[5]),
        ]);
    }
    format!(
        "Figure 7: FDRT assignment option distribution\n\
         (paper averages: A 37%, B 18%, C 9%, D 11%, E 24%, skipped <1%)\n{}",
        t.render()
    )
}

const PAPER_TABLE9: [(&str, f64, f64); 6] = [
    // (name, pinning, no pinning) — all-instruction migration
    ("bzip2", 0.0035, 0.0098),
    ("eon", 0.0594, 0.0827),
    ("gzip", 0.0597, 0.0826),
    ("perlbmk", 0.0377, 0.0359),
    ("twolf", 0.0508, 0.0892),
    ("vpr", 0.0436, 0.0477),
];

fn table9(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<[usize; 2]> = benches
        .iter()
        .map(|b| {
            [
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Fdrt { pinning: true }),
                ),
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Fdrt { pinning: false }),
                ),
            ]
        })
        .collect();
    let reports = batch.run(h);

    let mut t = Table::new(vec![
        "bench",
        "pin (paper/ours)",
        "nopin (paper/ours)",
        "chain red. (ours)",
    ]);
    for (b, idx) in benches.iter().zip(&cells) {
        let sp = reports[idx[0]].metrics.fdrt.expect("stats");
        let sn = reports[idx[1]].metrics.fdrt.expect("stats");
        let p = PAPER_TABLE9
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        let chain_red = if sn.chain_migration_rate() > 0.0 {
            1.0 - sp.chain_migration_rate() / sn.chain_migration_rate()
        } else {
            0.0
        };
        t.row(vec![
            b.name.to_string(),
            format!("{} / {}", pct(p.1), pct(sp.migration_rate())),
            format!("{} / {}", pct(p.2), pct(sn.migration_rate())),
            pct(chain_red),
        ]);
    }
    format!(
        "Table 9: instruction cluster migration (paper chain-migration reduction: 41%)\n{}",
        t.render()
    )
}

const PAPER_TABLE10: [(&str, f64, f64); 6] = [
    ("bzip2", 0.7955, 0.6669),
    ("eon", 0.4972, 0.5088),
    ("gzip", 0.5603, 0.5503),
    ("perlbmk", 0.6532, 0.6536),
    ("twolf", 0.5751, 0.5713),
    ("vpr", 0.5701, 0.5634),
];

fn table10(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<[usize; 2]> = benches
        .iter()
        .map(|b| {
            [
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Fdrt { pinning: true }),
                ),
                batch.add(
                    b,
                    base_config(opts.max_insts, Strategy::Fdrt { pinning: false }),
                ),
            ]
        })
        .collect();
    let reports = batch.run(h);

    let mut t = Table::new(vec!["bench", "pin (paper/ours)", "nopin (paper/ours)"]);
    for (b, idx) in benches.iter().zip(&cells) {
        let pin = &reports[idx[0]];
        let nopin = &reports[idx[1]];
        let p = PAPER_TABLE10
            .iter()
            .find(|(n, ..)| *n == b.name)
            .expect("focus");
        t.row(vec![
            b.name.to_string(),
            format!(
                "{} / {}",
                pct(p.1),
                pct(pin.metrics.fwd.intra_cluster_fraction())
            ),
            format!(
                "{} / {}",
                pct(p.2),
                pct(nopin.metrics.fwd.intra_cluster_fraction())
            ),
        ]);
    }
    format!(
        "Table 10: intra-cluster critical forwarding, pinning vs no pinning\n{}",
        t.render()
    )
}

fn fig8(opts: RunOptions, h: &mut Harness) -> String {
    struct Variant {
        name: &'static str,
        issue_latency: u64,
        apply: fn(&mut SimConfig),
    }
    let variants = [
        Variant {
            name: "mesh network",
            issue_latency: 4,
            apply: |c| c.engine.geometry.topology = Topology::Ring,
        },
        Variant {
            name: "one-cycle fwd",
            issue_latency: 4,
            apply: |c| c.engine.hop_latency = 1,
        },
        Variant {
            name: "point-to-point (1 hop everywhere)",
            issue_latency: 4,
            apply: |c| c.engine.geometry.topology = Topology::FullyConnected,
        },
        Variant {
            name: "8-wide 2-cluster",
            issue_latency: 2,
            apply: |c| {
                c.engine.geometry.clusters = 2;
                c.engine.rename_width = 8;
                c.engine.retire_width = 8;
                c.engine.rob_entries = 64;
            },
        },
    ];
    let mut out = String::from(
        "Figure 8: robustness across cluster configurations\n\
         (speedups relative to each configuration's own baseline)\n",
    );
    for v in variants {
        let strategies = [
            ("fdrt", Strategy::Fdrt { pinning: true }),
            ("friendly", Strategy::Friendly { middle_bias: false }),
            (
                "issue-time",
                Strategy::IssueTime {
                    latency: v.issue_latency,
                },
            ),
        ];
        let columns: Vec<(String, SimConfig)> = strategies
            .iter()
            .map(|(name, s)| {
                let mut c = base_config(opts.max_insts, *s);
                (v.apply)(&mut c);
                (name.to_string(), c)
            })
            .collect();
        let mut bc = base_config(opts.max_insts, Strategy::Baseline);
        (v.apply)(&mut bc);
        let t = speedup_grid(h, &Benchmark::spec_focus(), &columns, bc);
        out.push_str(&format!("\n[{}]\n{}", v.name, t.render()));
    }
    out
}

fn fig9(opts: RunOptions, h: &mut Harness) -> String {
    let columns = strategy_columns(&fig6_strategies(), opts.suite_insts);
    let mut out = String::from(
        "Figure 9: suite-wide speedups\n\
         (paper HMs — SPECint: FDRT 1.071, issue-time 1.038, Friendly 1.019;\n\
          MediaBench: FDRT 1.082, issue-time(0) 1.042, issue-time 1.017, Friendly 1.037)\n",
    );
    for (suite_name, suite) in [
        ("SPECint2000", Benchmark::spec_all()),
        ("MediaBench", Benchmark::mediabench()),
    ] {
        let t = speedup_grid(
            h,
            &suite,
            &columns,
            base_config(opts.suite_insts, Strategy::Baseline),
        );
        out.push_str(&format!("\n[{suite_name}]\n{}", t.render()));
    }
    out
}

fn ablation(opts: RunOptions, h: &mut Harness) -> String {
    let strategies = [
        Strategy::Friendly { middle_bias: false },
        Strategy::Friendly { middle_bias: true },
        Strategy::FdrtIntraOnly,
        Strategy::Fdrt { pinning: true },
    ];
    let columns = strategy_columns(&strategies, opts.max_insts);
    let t = speedup_grid(
        h,
        &Benchmark::spec_focus(),
        &columns,
        base_config(opts.max_insts, Strategy::Baseline),
    );
    format!(
        "§5.3 ablations\n\
         (paper: Friendly 1.031, Friendly-middle 1.047, FDRT-intra-only 1.057, FDRT 1.115)\n{}",
        t.render()
    )
}

fn fill_latency(opts: RunOptions, h: &mut Harness) -> String {
    let latencies = [3u64, 10, 100, 1000];
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<Vec<usize>> = benches
        .iter()
        .map(|b| {
            latencies
                .iter()
                .map(|&lat| {
                    let mut c = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
                    c.fill.latency = lat;
                    batch.add(b, c)
                })
                .collect()
        })
        .collect();
    let reports = batch.run(h);

    let mut header = vec!["bench".to_string()];
    header.extend(latencies.iter().map(|l| format!("lat {l}")));
    let mut t = Table::new(header);
    for (b, idx) in benches.iter().zip(&cells) {
        let mut cells = vec![b.name.to_string()];
        let mut reference = None;
        for &ji in idx {
            let r = &reports[ji];
            let base = *reference.get_or_insert(r.cycles);
            cells.push(ratio(base as f64 / r.cycles as f64));
        }
        t.row(cells);
    }
    format!(
        "Fill-unit latency sweep (FDRT performance relative to 3-cycle fill)
         (paper §4: a fill latency of 1000 cycles does not significantly
          impact FDRT performance)
{}",
        t.render()
    )
}

fn tc_size(opts: RunOptions, h: &mut Harness) -> String {
    let sizes = [64usize, 256, 1024, 4096];
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<Vec<usize>> = benches
        .iter()
        .map(|b| {
            sizes
                .iter()
                .map(|&entries| {
                    let mut c = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
                    c.trace_cache.entries = entries;
                    batch.add(b, c)
                })
                .collect()
        })
        .collect();
    let reports = batch.run(h);

    let mut header = vec!["bench".to_string()];
    for s in sizes {
        header.push(format!("{s}e ipc"));
        header.push(format!("{s}e tc%"));
    }
    let mut t = Table::new(header);
    for (b, idx) in benches.iter().zip(&cells) {
        let mut cells = vec![b.name.to_string()];
        for &ji in idx {
            let r = &reports[ji];
            cells.push(ratio(r.ipc));
            cells.push(pct(r.tc_inst_fraction()));
        }
        t.row(cells);
    }
    format!(
        "Trace-cache size sensitivity (FDRT; Table 7 baseline is 1024 entries)
{}",
        t.render()
    )
}

fn trace_select(opts: RunOptions, h: &mut Harness) -> String {
    let benches = Benchmark::spec_focus();
    let mut batch = Batch::new();
    let cells: Vec<[usize; 2]> = benches
        .iter()
        .map(|b| {
            let aligned = base_config(opts.max_insts, Strategy::Fdrt { pinning: true });
            let mut free = aligned;
            free.fill.end_at_backward_branch = false;
            [batch.add(b, aligned), batch.add(b, free)]
        })
        .collect();
    let reports = batch.run(h);

    let mut t = Table::new(vec![
        "bench",
        "ipc (loop-aligned)",
        "ipc (free-running)",
        "migration (aligned)",
        "migration (free)",
    ]);
    for (b, idx) in benches.iter().zip(&cells) {
        let aligned = &reports[idx[0]];
        let free = &reports[idx[1]];
        let ma = aligned.metrics.fdrt.expect("stats").migration_rate();
        let mf = free.metrics.fdrt.expect("stats").migration_rate();
        t.row(vec![
            b.name.to_string(),
            ratio(aligned.ipc),
            ratio(free.ipc),
            pct(ma),
            pct(mf),
        ]);
    }
    format!(
        "Trace-selection ablation: ending traces at loop-back edges
         (without loop alignment, 16-instruction trace windows precess
          around loops, the same static instruction lands in several
          overlapping trace families, and retire-time assignments churn —
          see DESIGN.md §5)
{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for id in ExperimentId::ALL {
            let s = id.to_string();
            assert_eq!(s.parse::<ExperimentId>().unwrap(), id);
        }
        assert!("bogus".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn table1_runs_quickly() {
        let out = run_experiment(
            ExperimentId::Table1,
            RunOptions {
                max_insts: 4_000,
                suite_insts: 2_000,
                ..RunOptions::default()
            },
        );
        assert!(out.contains("bzip2"));
        assert!(out.contains("Table 1"));
    }

    #[test]
    fn shared_harness_memoizes_across_experiments() {
        // Table 1 and Table 2 render different columns of the *same*
        // baseline cells; through one harness with a store the second
        // experiment should simulate nothing. The store lives in a
        // scratch directory so the test is hermetic.
        let dir = std::env::temp_dir().join(format!("ctcp-bench-memo-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = RunOptions {
            max_insts: 3_000,
            suite_insts: 1_500,
            ..RunOptions::default()
        };
        let mut h = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        run_experiment_in(ExperimentId::Table1, opts, &mut h);
        assert_eq!(h.last_batch().simulated, 6);
        run_experiment_in(ExperimentId::Table2, opts, &mut h);
        assert_eq!(h.last_batch().simulated, 0);
        assert_eq!(h.last_batch().store_hits, 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
