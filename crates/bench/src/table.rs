//! Minimal fixed-width table printing for experiment output.

/// A simple left-column + numeric-columns text table.
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.min(100)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a ratio with three decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(vec!["bench", "x"]);
        t.row(vec!["gzip", "1.0"]);
        t.row(vec!["longername", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[3].contains("22.5"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(ratio(1.23456), "1.235");
    }
}
