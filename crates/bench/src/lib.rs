//! # Experiment definitions
//!
//! Regenerates every table and figure of Bhargava & John (ISCA 2003)
//! from the CTCP simulator. Experiments describe their simulation grids
//! as jobs and execute them through `ctcp_harness` (worker pool +
//! memoizing result store); the `repro` binary drives the
//! [`experiments`] module, and the self-timed benches in `benches/`
//! time the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{run_experiment, run_experiment_in, ExperimentId, RunOptions};
