//! # Experiment harness
//!
//! Regenerates every table and figure of Bhargava & John (ISCA 2003) from
//! the CTCP simulator. The `repro` binary drives the [`experiments`]
//! module; Criterion benches in `benches/` time the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{run_experiment, ExperimentId, RunOptions};
