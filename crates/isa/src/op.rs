//! Opcodes, operation classes, and functional-unit types.

use std::fmt;

/// The TRISC opcodes.
///
/// The set intentionally mirrors the mix the paper's evaluation cares about:
/// simple integer ALU operations, complex integer multiply/divide, integer
/// and floating-point memory operations, branches, and basic/complex
/// floating-point arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    // -- simple integer (ALU units) -----------------------------------
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Set dest to 1 if src1 < src2 (signed), else 0.
    Slt,
    /// Set dest to 1 if src1 == src2, else 0.
    Seq,
    /// dest = src1 (register move; encoded as ALU op).
    Mov,
    /// dest = imm (load immediate; encoded as ALU op).
    Movi,
    // -- complex integer (CPX unit) ------------------------------------
    Mul,
    Div,
    // -- integer memory (MEM unit) --------------------------------------
    /// dest = mem[src1 + imm]
    Ld,
    /// mem[src1 + imm] = src2
    St,
    // -- branches (BR unit) ----------------------------------------------
    /// Branch to `imm` if src1 == src2.
    Beq,
    /// Branch to `imm` if src1 != src2.
    Bne,
    /// Branch to `imm` if src1 < src2 (signed).
    Blt,
    /// Branch to `imm` if src1 >= src2 (signed).
    Bge,
    /// Unconditional direct jump to `imm`.
    Jmp,
    /// Indirect jump to the address in src1.
    Jr,
    /// Direct call: LR = return address; jump to `imm`.
    Call,
    /// Return: jump to the address in LR.
    Ret,
    // -- floating point basic (FP unit) ----------------------------------
    FAdd,
    FSub,
    /// dest = 1 if fsrc1 < fsrc2 else 0 (integer dest).
    FCmp,
    FMov,
    /// Convert integer src1 to FP dest.
    ItoF,
    /// Convert FP src1 to integer dest (truncating).
    FtoI,
    // -- floating point complex (FP-CPX unit) -----------------------------
    FMul,
    FDiv,
    FSqrt,
    // -- floating point memory (FP-MEM unit) ------------------------------
    /// fdest = mem[src1 + imm] (bit pattern reinterpreted as f64)
    FLd,
    /// mem[src1 + imm] = fsrc2
    FSt,
    // -- pseudo ----------------------------------------------------------
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Opcode {
    /// The broad class of this opcode, which determines which reservation
    /// station and functional unit executes it.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Seq | Mov | Movi | Nop => {
                OpClass::SimpleInt
            }
            Mul | Div => OpClass::ComplexInt,
            Ld => OpClass::Load,
            St => OpClass::Store,
            Beq | Bne | Blt | Bge | Jmp | Jr | Call | Ret | Halt => OpClass::Branch,
            FAdd | FSub | FCmp | FMov | ItoF | FtoI => OpClass::FpBasic,
            FMul | FDiv | FSqrt => OpClass::FpComplex,
            FLd => OpClass::FpLoad,
            FSt => OpClass::FpStore,
        }
    }

    /// The special-purpose functional unit that executes this opcode.
    pub fn fu_type(self) -> FuType {
        self.class().fu_type()
    }

    /// True for conditional branches (taken or not-taken at run time).
    pub fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// True for any control-transfer instruction, conditional or not.
    pub fn is_cti(self) -> bool {
        self.class() == OpClass::Branch && self != Opcode::Halt
    }

    /// True for indirect control transfers whose target comes from a
    /// register (`Jr`, `Ret`).
    pub fn is_indirect(self) -> bool {
        matches!(self, Opcode::Jr | Opcode::Ret)
    }

    /// True for loads and stores of either register file.
    pub fn is_mem(self) -> bool {
        matches!(
            self.class(),
            OpClass::Load | OpClass::Store | OpClass::FpLoad | OpClass::FpStore
        )
    }

    /// True for loads (integer or FP).
    pub fn is_load(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::FpLoad)
    }

    /// True for stores (integer or FP).
    pub fn is_store(self) -> bool {
        matches!(self.class(), OpClass::Store | OpClass::FpStore)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:?}").to_lowercase();
        f.write_str(&s)
    }
}

/// Operation classes: the granularity at which execution latency and
/// reservation-station routing are decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpClass {
    SimpleInt,
    ComplexInt,
    Load,
    Store,
    Branch,
    FpBasic,
    FpComplex,
    FpLoad,
    FpStore,
}

impl OpClass {
    /// Maps the class to the paper's special-purpose functional unit type.
    pub fn fu_type(self) -> FuType {
        match self {
            OpClass::SimpleInt => FuType::Alu,
            OpClass::ComplexInt => FuType::Cpx,
            OpClass::Load | OpClass::Store => FuType::Mem,
            OpClass::Branch => FuType::Br,
            OpClass::FpBasic => FuType::Fp,
            OpClass::FpComplex => FuType::FpCpx,
            OpClass::FpLoad | OpClass::FpStore => FuType::FpMem,
        }
    }
}

/// The eight special-purpose functional units of one cluster (Figure 3 of
/// the paper): two ALUs, one integer memory unit, one branch unit, one
/// complex integer unit, one basic FP unit, one complex FP unit, and one FP
/// memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuType {
    /// Simple integer unit (2 per cluster).
    Alu,
    /// Integer memory unit.
    Mem,
    /// Branch unit.
    Br,
    /// Complex integer unit (multiply/divide).
    Cpx,
    /// Basic floating-point unit.
    Fp,
    /// Complex floating-point unit (multiply/divide/sqrt).
    FpCpx,
    /// Floating-point memory unit.
    FpMem,
}

impl FuType {
    /// All functional-unit types, in a fixed order usable for table indexing.
    pub const ALL: [FuType; 7] = [
        FuType::Alu,
        FuType::Mem,
        FuType::Br,
        FuType::Cpx,
        FuType::Fp,
        FuType::FpCpx,
        FuType::FpMem,
    ];

    /// Dense index in `0..7`.
    pub fn index(self) -> usize {
        match self {
            FuType::Alu => 0,
            FuType::Mem => 1,
            FuType::Br => 2,
            FuType::Cpx => 3,
            FuType::Fp => 4,
            FuType::FpCpx => 5,
            FuType::FpMem => 6,
        }
    }
}

impl fmt::Display for FuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuType::Alu => "alu",
            FuType::Mem => "mem",
            FuType::Br => "br",
            FuType::Cpx => "cpx",
            FuType::Fp => "fp",
            FuType::FpCpx => "fpcpx",
            FuType::FpMem => "fpmem",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.is_conditional_branch());
        assert!(!Opcode::Jmp.is_conditional_branch());
        assert!(Opcode::Jmp.is_cti());
        assert!(Opcode::Ret.is_cti());
        assert!(Opcode::Ret.is_indirect());
        assert!(!Opcode::Halt.is_cti());
        assert!(!Opcode::Add.is_cti());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Ld.is_load());
        assert!(Opcode::FLd.is_load());
        assert!(Opcode::St.is_store());
        assert!(Opcode::FSt.is_store());
        assert!(Opcode::Ld.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn fu_mapping_matches_paper() {
        assert_eq!(Opcode::Add.fu_type(), FuType::Alu);
        assert_eq!(Opcode::Mul.fu_type(), FuType::Cpx);
        assert_eq!(Opcode::Ld.fu_type(), FuType::Mem);
        assert_eq!(Opcode::St.fu_type(), FuType::Mem);
        assert_eq!(Opcode::Beq.fu_type(), FuType::Br);
        assert_eq!(Opcode::FAdd.fu_type(), FuType::Fp);
        assert_eq!(Opcode::FDiv.fu_type(), FuType::FpCpx);
        assert_eq!(Opcode::FLd.fu_type(), FuType::FpMem);
    }

    #[test]
    fn fu_index_is_dense_and_unique() {
        let mut seen = [false; 7];
        for fu in FuType::ALL {
            assert!(!seen[fu.index()]);
            seen[fu.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
