//! A textual assembler and disassembler for TRISC.
//!
//! The format is one instruction per line, `;` comments, and `name:`
//! labels. Register names are `r0`–`r30`, `sp`, `lr`, `zero`, and
//! `f0`–`f31`. Immediates are decimal or `0x` hexadecimal. Branch and
//! call targets are labels; `la rD, label` materialises a label's code
//! address (for jump tables used with `jr`).
//!
//! ```
//! use ctcp_isa::asm::{assemble, disassemble};
//!
//! let program = assemble(
//!     "       movi r1, 0
//!             movi r2, 10
//!     loop:   addi r1, r1, 1
//!             blt  r1, r2, loop
//!             halt",
//! )
//! .unwrap();
//! assert_eq!(program.len(), 5);
//! let text = disassemble(&program);
//! let again = assemble(&text).unwrap();
//! assert_eq!(program.instructions(), again.instructions());
//! ```

use crate::{Instruction, Opcode, Program, ProgramBuilder, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending text.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The kinds of assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Unknown register name.
    UnknownRegister(String),
    /// An operand could not be parsed as an immediate.
    BadImmediate(String),
    /// Wrong operand count for the mnemonic.
    WrongArity {
        /// The mnemonic in question.
        mnemonic: String,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// The program failed final validation (e.g. empty).
    Invalid(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::UnknownRegister(r) => write!(f, "unknown register {r:?}"),
            AsmErrorKind::BadImmediate(s) => write!(f, "bad immediate {s:?}"),
            AsmErrorKind::WrongArity {
                mnemonic,
                expected,
                found,
            } => write!(f, "{mnemonic} takes {expected} operands, found {found}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "label {l:?} is not defined"),
            AsmErrorKind::Invalid(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError {
        line,
        kind: AsmErrorKind::UnknownRegister(tok.to_string()),
    };
    match tok {
        "sp" => return Ok(Reg::SP),
        "lr" => return Ok(Reg::LR),
        "zero" => return Ok(Reg::ZERO),
        _ => {}
    }
    let (kind, num) = tok.split_at(1);
    let n: u8 = num.parse().map_err(|_| err())?;
    match kind {
        "r" if n < 32 => Ok(Reg::int(n)),
        "f" if n < 32 => Ok(Reg::fp(n)),
        _ => Err(err()),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let err = || AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_string()),
    };
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err())?
    } else {
        body.parse::<i64>().map_err(|_| err())?
    };
    Ok(if neg { -v } else { v })
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the first offending line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, crate::Label> = HashMap::new();
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut referenced: Vec<(String, usize)> = Vec::new();

    let mut label_of = |name: &str, b: &mut ProgramBuilder| -> crate::Label {
        *labels.entry(name.to_string()).or_insert_with(|| b.label())
    };

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find(';') {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            if defined.insert(name.to_string(), line).is_some() {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::DuplicateLabel(name.to_string()),
                });
            }
            let l = label_of(name, &mut b);
            b.bind(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, ops_text) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if ops_text.is_empty() {
            Vec::new()
        } else {
            ops_text.split(',').map(str::trim).collect()
        };
        let arity = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line,
                    kind: AsmErrorKind::WrongArity {
                        mnemonic: mnemonic.to_string(),
                        expected: n,
                        found: ops.len(),
                    },
                })
            }
        };
        let reg = |i: usize| parse_reg(ops[i], line);
        let is_reg = |i: usize| parse_reg(ops[i], line).is_ok();

        match mnemonic {
            // Three-operand ALU, register or immediate second source.
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "seq"
            | "mul" | "div" => {
                arity(3)?;
                let op = match mnemonic {
                    "add" => Opcode::Add,
                    "sub" => Opcode::Sub,
                    "and" => Opcode::And,
                    "or" => Opcode::Or,
                    "xor" => Opcode::Xor,
                    "sll" => Opcode::Sll,
                    "srl" => Opcode::Srl,
                    "sra" => Opcode::Sra,
                    "slt" => Opcode::Slt,
                    "seq" => Opcode::Seq,
                    "mul" => Opcode::Mul,
                    _ => Opcode::Div,
                };
                let d = reg(0)?;
                let a = reg(1)?;
                if is_reg(2) {
                    b.push(Instruction::new(op, Some(d), Some(a), Some(reg(2)?), 0));
                } else {
                    let imm = parse_imm(ops[2], line)?;
                    b.push(Instruction::new(op, Some(d), Some(a), None, imm));
                }
            }
            // Convenience immediate aliases.
            "addi" | "andi" | "xori" | "slli" | "srli" => {
                arity(3)?;
                let op = match mnemonic {
                    "addi" => Opcode::Add,
                    "andi" => Opcode::And,
                    "xori" => Opcode::Xor,
                    "slli" => Opcode::Sll,
                    _ => Opcode::Srl,
                };
                let d = reg(0)?;
                let a = reg(1)?;
                let imm = parse_imm(ops[2], line)?;
                b.push(Instruction::new(op, Some(d), Some(a), None, imm));
            }
            "mov" => {
                arity(2)?;
                let d = reg(0)?;
                let a = reg(1)?;
                b.push(Instruction::new(Opcode::Mov, Some(d), Some(a), None, 0));
            }
            "movi" => {
                arity(2)?;
                let d = reg(0)?;
                let imm = parse_imm(ops[1], line)?;
                b.push(Instruction::new(Opcode::Movi, Some(d), None, None, imm));
            }
            "la" => {
                arity(2)?;
                let d = reg(0)?;
                referenced.push((ops[1].to_string(), line));
                let l = label_of(ops[1], &mut b);
                b.movi_label(d, l);
            }
            "ld" | "fld" => {
                arity(3)?;
                let op = if mnemonic == "ld" {
                    Opcode::Ld
                } else {
                    Opcode::FLd
                };
                let d = reg(0)?;
                let base = reg(1)?;
                let disp = parse_imm(ops[2], line)?;
                b.push(Instruction::new(op, Some(d), Some(base), None, disp));
            }
            "st" | "fst" => {
                arity(3)?;
                let op = if mnemonic == "st" {
                    Opcode::St
                } else {
                    Opcode::FSt
                };
                let v = reg(0)?;
                let base = reg(1)?;
                let disp = parse_imm(ops[2], line)?;
                b.push(Instruction::new(op, None, Some(base), Some(v), disp));
            }
            "beq" | "bne" | "blt" | "bge" => {
                arity(3)?;
                let a = reg(0)?;
                let c = reg(1)?;
                referenced.push((ops[2].to_string(), line));
                let l = label_of(ops[2], &mut b);
                match mnemonic {
                    "beq" => b.beq(a, c, l),
                    "bne" => b.bne(a, c, l),
                    "blt" => b.blt(a, c, l),
                    _ => b.bge(a, c, l),
                };
            }
            "jmp" => {
                arity(1)?;
                referenced.push((ops[0].to_string(), line));
                let l = label_of(ops[0], &mut b);
                b.jmp(l);
            }
            "jr" => {
                arity(1)?;
                let t = reg(0)?;
                b.jr(t);
            }
            "call" => {
                arity(1)?;
                referenced.push((ops[0].to_string(), line));
                let l = label_of(ops[0], &mut b);
                b.call(l);
            }
            "ret" => {
                arity(0)?;
                b.ret();
            }
            "fadd" | "fsub" | "fmul" | "fdiv" | "fcmp" => {
                arity(3)?;
                let op = match mnemonic {
                    "fadd" => Opcode::FAdd,
                    "fsub" => Opcode::FSub,
                    "fmul" => Opcode::FMul,
                    "fdiv" => Opcode::FDiv,
                    _ => Opcode::FCmp,
                };
                let d = reg(0)?;
                let a = reg(1)?;
                let c = reg(2)?;
                b.push(Instruction::new(op, Some(d), Some(a), Some(c), 0));
            }
            "fsqrt" | "fmov" | "itof" | "ftoi" => {
                arity(2)?;
                let op = match mnemonic {
                    "fsqrt" => Opcode::FSqrt,
                    "fmov" => Opcode::FMov,
                    "itof" => Opcode::ItoF,
                    _ => Opcode::FtoI,
                };
                let d = reg(0)?;
                let a = reg(1)?;
                b.push(Instruction::new(op, Some(d), Some(a), None, 0));
            }
            "nop" => {
                arity(0)?;
                b.nop();
            }
            "halt" => {
                arity(0)?;
                b.halt();
            }
            other => {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
                })
            }
        }
    }

    for (name, line) in referenced {
        if !defined.contains_key(&name) {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::UndefinedLabel(name),
            });
        }
    }
    b.try_build().map_err(|e| AsmError {
        line: 0,
        kind: AsmErrorKind::Invalid(e.to_string()),
    })
}

/// Disassembles a program into text that [`assemble`] accepts and that
/// round-trips to the identical instruction sequence. Branch targets are
/// rendered as synthetic labels `L<index>`.
pub fn disassemble(program: &Program) -> String {
    use std::collections::BTreeSet;
    // Collect branch-target instruction indices.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for inst in program.instructions() {
        let direct_cti = inst.op.is_cti() && !inst.op.is_indirect();
        if direct_cti {
            targets.insert(inst.imm as usize);
        }
        if inst.op == Opcode::Movi {
            // `la` targets: immediate equal to a valid code address.
            if let Some(idx) = program.index_of(inst.imm as u64) {
                targets.insert(idx);
            }
        }
    }
    let label = |idx: usize| format!("L{idx}");
    let mut out = String::new();
    for (i, inst) in program.instructions().iter().enumerate() {
        if targets.contains(&i) {
            out.push_str(&format!("{}:\n", label(i)));
        }
        out.push_str("    ");
        out.push_str(&render(inst, program, &label));
        out.push('\n');
    }
    out
}

fn render(inst: &Instruction, program: &Program, label: &dyn Fn(usize) -> String) -> String {
    let r = |x: Option<Reg>| x.map(|r| r.to_string()).unwrap_or_default();
    match inst.op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Sll
        | Opcode::Srl
        | Opcode::Sra
        | Opcode::Slt
        | Opcode::Seq
        | Opcode::Mul
        | Opcode::Div => {
            let name = format!("{}", inst.op);
            match inst.src2 {
                Some(s2) => format!("{name} {}, {}, {}", r(inst.dest), r(inst.src1), s2),
                None => format!("{name} {}, {}, {}", r(inst.dest), r(inst.src1), inst.imm),
            }
        }
        Opcode::Mov => format!("mov {}, {}", r(inst.dest), r(inst.src1)),
        Opcode::Movi => {
            if let Some(idx) = program.index_of(inst.imm as u64) {
                format!("la {}, {}", r(inst.dest), label(idx))
            } else {
                format!("movi {}, {}", r(inst.dest), inst.imm)
            }
        }
        Opcode::Ld => format!("ld {}, {}, {}", r(inst.dest), r(inst.src1), inst.imm),
        Opcode::FLd => format!("fld {}, {}, {}", r(inst.dest), r(inst.src1), inst.imm),
        Opcode::St => format!("st {}, {}, {}", r(inst.src2), r(inst.src1), inst.imm),
        Opcode::FSt => format!("fst {}, {}, {}", r(inst.src2), r(inst.src1), inst.imm),
        Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
            format!(
                "{} {}, {}, {}",
                inst.op,
                r(inst.src1),
                r(inst.src2),
                label(inst.imm as usize)
            )
        }
        Opcode::Jmp => format!("jmp {}", label(inst.imm as usize)),
        Opcode::Jr => format!("jr {}", r(inst.src1)),
        Opcode::Call => format!("call {}", label(inst.imm as usize)),
        Opcode::Ret => "ret".to_string(),
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FCmp => {
            format!(
                "{} {}, {}, {}",
                inst.op,
                r(inst.dest),
                r(inst.src1),
                r(inst.src2)
            )
        }
        Opcode::FSqrt | Opcode::FMov | Opcode::ItoF | Opcode::FtoI => {
            format!("{} {}, {}", inst.op, r(inst.dest), r(inst.src1))
        }
        Opcode::Nop => "nop".to_string(),
        Opcode::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;

    #[test]
    fn assembles_and_runs_a_loop() {
        let p = assemble(
            "       movi r1, 0
                    movi r2, 5
            top:    addi r1, r1, 1
                    blt  r1, r2, top
                    halt",
        )
        .unwrap();
        let mut ex = Executor::new(&p);
        ex.by_ref().count();
        assert_eq!(ex.reg(Reg::R1), 5);
    }

    #[test]
    fn register_and_immediate_alu_forms() {
        let p = assemble("add r1, r2, r3\nadd r1, r2, 42\nhalt").unwrap();
        let i0 = p.get(0).unwrap();
        let i1 = p.get(1).unwrap();
        assert_eq!(i0.src2, Some(Reg::R3));
        assert_eq!(i1.src2, None);
        assert_eq!(i1.imm, 42);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("movi r1, 0x10\nmovi r2, -5\nhalt").unwrap();
        assert_eq!(p.get(0).unwrap().imm, 16);
        assert_eq!(p.get(1).unwrap().imm, -5);
    }

    #[test]
    fn named_registers() {
        let p = assemble("mov sp, lr\nadd r1, zero, f3\nhalt").unwrap();
        assert_eq!(p.get(0).unwrap().dest, Some(Reg::SP));
        assert_eq!(p.get(0).unwrap().src1, Some(Reg::LR));
        assert_eq!(p.get(1).unwrap().src2, Some(Reg::fp(3)));
    }

    #[test]
    fn forward_labels_and_calls() {
        let p = assemble(
            "       call f
                    halt
            f:      movi r1, 7
                    ret",
        )
        .unwrap();
        let mut ex = Executor::new(&p);
        ex.by_ref().count();
        assert_eq!(ex.reg(Reg::R1), 7);
    }

    #[test]
    fn la_builds_jump_tables() {
        let p = assemble(
            "       la r1, target
                    jr r1
                    nop
            target: movi r2, 9
                    halt",
        )
        .unwrap();
        let mut ex = Executor::new(&p);
        ex.by_ref().count();
        assert_eq!(ex.reg(Reg::R2), 9);
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; header\n\n  movi r1, 1 ; trailing\n  halt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = assemble("frobnicate r1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn error_unknown_register() {
        let e = assemble("movi r99, 0").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownRegister(_)));
    }

    #[test]
    fn error_wrong_arity() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(matches!(
            e.kind,
            AsmErrorKind::WrongArity {
                expected: 3,
                found: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_duplicate_label() {
        let e = assemble("x: nop\nx: nop\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn error_undefined_label() {
        let e = assemble("jmp nowhere\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn error_bad_immediate() {
        let e = assemble("movi r1, banana").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn disassemble_round_trips() {
        let src = "       movi r1, 0
                    movi r2, 8
                    movi r10, 0x8000
            top:    slli r3, r1, 3
                    add  r3, r3, r10
                    st   r1, r3, 0
                    ld   r4, r3, 0
                    fadd f1, f2, f3
                    addi r1, r1, 1
                    blt  r1, r2, top
                    call fn
                    halt
            fn:     ret";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        let q = assemble(&text).unwrap();
        assert_eq!(p.instructions(), q.instructions());
    }

    #[test]
    fn display_error_messages_are_informative() {
        let e = assemble("add r1, r2").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("add"));
    }
}
