//! Sparse word-addressable data memory used by the functional executor.

use std::collections::HashMap;

const PAGE_WORDS: usize = 1024;
const PAGE_SHIFT: u32 = 10; // 1024 words per page

/// A sparse, paged, 64-bit-word memory.
///
/// Addresses are byte addresses; accesses are aligned to 8 bytes by the
/// executor before reaching this structure (the low three address bits are
/// ignored). Untouched memory reads as zero.
#[derive(Debug, Default, Clone)]
pub struct WordMemory {
    pages: HashMap<u64, Box<[i64; PAGE_WORDS]>>,
}

impl WordMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let word = addr >> 3;
        (word >> PAGE_SHIFT, (word as usize) & (PAGE_WORDS - 1))
    }

    /// Reads the 64-bit word containing byte address `addr`.
    pub fn read(&self, addr: u64) -> i64 {
        let (page, off) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes the 64-bit word containing byte address `addr`.
    pub fn write(&mut self, addr: u64, value: i64) {
        let (page, off) = Self::split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[off] = value;
    }

    /// Reads an `f64` stored at `addr` (bit pattern reinterpretation).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr) as u64)
    }

    /// Writes an `f64` at `addr` (bit pattern reinterpretation).
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits() as i64);
    }

    /// Number of resident pages (for tests and diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = WordMemory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(0xdead_beef), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = WordMemory::new();
        m.write(0x1000, -42);
        assert_eq!(m.read(0x1000), -42);
        // Same word, different byte offset within the word.
        assert_eq!(m.read(0x1007), -42);
        // Next word unaffected.
        assert_eq!(m.read(0x1008), 0);
    }

    #[test]
    fn float_round_trips() {
        let mut m = WordMemory::new();
        m.write_f64(0x2000, 3.5);
        assert_eq!(m.read_f64(0x2000), 3.5);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut m = WordMemory::new();
        assert_eq!(m.resident_pages(), 0);
        m.write(0, 1);
        m.write(8, 2);
        assert_eq!(m.resident_pages(), 1);
        m.write(1 << 20, 3);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn distant_addresses_do_not_alias() {
        let mut m = WordMemory::new();
        m.write(0x10, 1);
        m.write(0x10 + (1 << 13), 2); // one page later
        assert_eq!(m.read(0x10), 1);
        assert_eq!(m.read(0x10 + (1 << 13)), 2);
    }
}
