//! Static instructions.

use crate::{FuType, OpClass, Opcode, Reg};
use std::fmt;

/// A static TRISC instruction.
///
/// Instructions have at most one destination register and two source
/// registers plus a signed immediate. Branch targets are encoded in the
/// immediate as an absolute instruction index within the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// First source register (RS1 in the paper's terminology).
    pub src1: Option<Reg>,
    /// Second source register (RS2 in the paper's terminology).
    pub src2: Option<Reg>,
    /// Immediate: ALU immediate, memory displacement, or branch target
    /// (absolute instruction index).
    pub imm: i64,
}

impl Instruction {
    /// Creates an instruction, normalising the zero register: a destination
    /// of `Reg::ZERO` becomes `None` (the write is architecturally
    /// invisible) while `Reg::ZERO` sources are kept (they read as zero and
    /// never create dependencies — see [`Instruction::sources`]).
    pub fn new(
        op: Opcode,
        dest: Option<Reg>,
        src1: Option<Reg>,
        src2: Option<Reg>,
        imm: i64,
    ) -> Self {
        let dest = dest.filter(|d| !d.is_zero());
        Instruction {
            op,
            dest,
            src1,
            src2,
            imm,
        }
    }

    /// A `nop`.
    pub fn nop() -> Self {
        Instruction::new(Opcode::Nop, None, None, None, 0)
    }

    /// Operation class (see [`OpClass`]).
    #[inline]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// The functional unit that executes this instruction.
    #[inline]
    pub fn fu_type(&self) -> FuType {
        self.op.fu_type()
    }

    /// Source registers that create true data dependencies (the zero
    /// register is excluded because it is not renamed and always ready).
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// RS1 if it creates a true dependency.
    pub fn dep_src1(&self) -> Option<Reg> {
        self.src1.filter(|r| !r.is_zero())
    }

    /// RS2 if it creates a true dependency.
    pub fn dep_src2(&self) -> Option<Reg> {
        self.src2.filter(|r| !r.is_zero())
    }

    /// True if the instruction produces a register result.
    #[inline]
    pub fn has_dest(&self) -> bool {
        self.dest.is_some()
    }
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::nop()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = self.dest {
            sep(f)?;
            write!(f, "{d}")?;
        }
        if let Some(s) = self.src1 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if let Some(s) = self.src2 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if self.imm != 0 || self.op == Opcode::Movi || self.op.is_cti() || self.op.is_mem() {
            sep(f)?;
            write!(f, "{}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dest_is_discarded() {
        let i = Instruction::new(
            Opcode::Add,
            Some(Reg::ZERO),
            Some(Reg::R1),
            Some(Reg::R2),
            0,
        );
        assert!(i.dest.is_none());
        assert!(!i.has_dest());
    }

    #[test]
    fn zero_sources_create_no_dependencies() {
        let i = Instruction::new(
            Opcode::Add,
            Some(Reg::R3),
            Some(Reg::ZERO),
            Some(Reg::R2),
            0,
        );
        let deps: Vec<_> = i.sources().collect();
        assert_eq!(deps, vec![Reg::R2]);
        assert!(i.dep_src1().is_none());
        assert_eq!(i.dep_src2(), Some(Reg::R2));
    }

    #[test]
    fn display_is_nonempty() {
        let i = Instruction::new(Opcode::Ld, Some(Reg::R1), Some(Reg::R2), None, 16);
        let s = i.to_string();
        assert!(s.contains("ld"));
        assert!(s.contains("r1"));
        assert!(s.contains("16"));
    }

    #[test]
    fn default_is_nop() {
        assert_eq!(Instruction::default().op, Opcode::Nop);
    }
}
