//! # TRISC — the instruction set of the CTCP simulator
//!
//! This crate defines a small Alpha-like RISC instruction set ("TRISC"),
//! program representation, and a functional executor that produces the
//! dynamic (correct-path) instruction stream consumed by the timing model.
//!
//! The instruction classes map one-to-one onto the special-purpose
//! functional units of the clustered trace cache processor described in
//! Bhargava & John (ISCA 2003): simple integer (ALU), integer memory (MEM),
//! branch (BR), complex integer (CPX), basic FP, complex FP, and FP memory.
//!
//! ## Example
//!
//! ```
//! use ctcp_isa::{ProgramBuilder, Reg, Executor};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.label();
//! b.movi(Reg::R1, 0);          // i = 0
//! b.movi(Reg::R2, 10);         // n = 10
//! b.bind(loop_top);
//! b.addi(Reg::R1, Reg::R1, 1); // i += 1
//! b.blt(Reg::R1, Reg::R2, loop_top);
//! b.halt();
//! let program = b.build();
//!
//! let executed: Vec<_> = Executor::new(&program).take(100).collect();
//! assert!(executed.len() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod dyninst;
mod exec;
mod inst;
mod mem;
mod op;
mod program;
mod reg;

pub use dyninst::{BranchOutcome, DynInst};
pub use exec::{ExecError, Executor};
pub use inst::Instruction;
pub use mem::WordMemory;
pub use op::{FuType, OpClass, Opcode};
pub use program::{Label, Program, ProgramBuilder, ProgramError, TEXT_BASE};
pub use reg::Reg;
