//! Programs and the program builder.

use crate::{Instruction, Opcode, Reg};
use std::fmt;

/// Base virtual address of the text segment; instruction `i` lives at
/// `TEXT_BASE + 4 * i`.
pub const TEXT_BASE: u64 = 0x1000;

/// An executable TRISC program: a flat sequence of instructions with
/// branch targets resolved to absolute instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Instruction>,
}

impl Program {
    /// Wraps a raw instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::EmptyProgram`] for an empty sequence and
    /// [`ProgramError::BadTarget`] if any direct control transfer targets
    /// an instruction index outside the program.
    pub fn new(insts: Vec<Instruction>) -> Result<Self, ProgramError> {
        if insts.is_empty() {
            return Err(ProgramError::EmptyProgram);
        }
        let n = insts.len() as i64;
        for (idx, inst) in insts.iter().enumerate() {
            let is_direct_cti = inst.op.is_cti() && !inst.op.is_indirect();
            if is_direct_cti && (inst.imm < 0 || inst.imm >= n) {
                return Err(ProgramError::BadTarget {
                    inst: idx,
                    target: inst.imm,
                });
            }
        }
        Ok(Program { insts })
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never true for a
    /// successfully constructed `Program`).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Instruction> {
        self.insts.get(idx)
    }

    /// All instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The virtual address of instruction `idx`.
    #[inline]
    pub fn pc_of(idx: usize) -> u64 {
        TEXT_BASE + 4 * idx as u64
    }

    /// The instruction index of virtual address `pc`, if it is a valid
    /// text address for this program.
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !(pc - TEXT_BASE).is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        (idx < self.insts.len()).then_some(idx)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{:#06x}: {}", Program::pc_of(i), inst)?;
        }
        Ok(())
    }
}

/// Errors produced while constructing a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The instruction sequence was empty.
    EmptyProgram,
    /// A direct branch targets an instruction outside the program.
    BadTarget {
        /// Index of the offending branch.
        inst: usize,
        /// The out-of-range target.
        target: i64,
    },
    /// A label was used as a branch target but never bound.
    UnboundLabel(Label),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::EmptyProgram => write!(f, "program has no instructions"),
            ProgramError::BadTarget { inst, target } => {
                write!(f, "instruction {inst} branches to invalid target {target}")
            }
            ProgramError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An opaque branch-target label handed out by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s with forward-reference labels.
///
/// # Example
///
/// ```
/// use ctcp_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.label();
/// b.movi(Reg::R1, 5);
/// b.beq(Reg::R1, Reg::ZERO, done);  // forward reference
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.bind(done);
/// b.halt();
/// let program = b.build();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Instruction>,
    /// Bound position of each label.
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
    /// Like `fixups`, but the immediate receives the label's *PC* rather
    /// than its instruction index (for jump tables).
    pc_fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    /// Allocates a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit(&mut self, op: Opcode, d: Option<Reg>, s1: Option<Reg>, s2: Option<Reg>, imm: i64) {
        self.insts.push(Instruction::new(op, d, s1, s2, imm));
    }

    fn emit_branch(&mut self, op: Opcode, s1: Option<Reg>, s2: Option<Reg>, target: Label) {
        let idx = self.insts.len();
        self.fixups.push((idx, target));
        self.insts.push(Instruction::new(op, None, s1, s2, 0));
    }

    // ---- three-operand ALU ------------------------------------------------

    /// `dest = a + b`
    pub fn add(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Add, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a - b`
    pub fn sub(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Sub, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a & b`
    pub fn and(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::And, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a | b`
    pub fn or(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Or, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a ^ b`
    pub fn xor(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Xor, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a << (b & 63)`
    pub fn sll(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Sll, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = (a as u64) >> (b & 63)`
    pub fn srl(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Srl, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a >> (b & 63)` (arithmetic)
    pub fn sra(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Sra, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = (a < b) as i64` (signed)
    pub fn slt(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Slt, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = (a == b) as i64`
    pub fn seq(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Seq, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a * b` (complex integer)
    pub fn mul(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Mul, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a / b` (complex integer; division by zero yields 0)
    pub fn div(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::Div, Some(dest), Some(a), Some(b), 0);
        self
    }

    // ---- immediates and moves ----------------------------------------------

    /// `dest = a + imm`
    pub fn addi(&mut self, dest: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Add, Some(dest), Some(a), None, imm);
        self
    }

    /// `dest = a & imm`
    pub fn andi(&mut self, dest: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::And, Some(dest), Some(a), None, imm);
        self
    }

    /// `dest = a ^ imm`
    pub fn xori(&mut self, dest: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Xor, Some(dest), Some(a), None, imm);
        self
    }

    /// `dest = a << imm`
    pub fn slli(&mut self, dest: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Sll, Some(dest), Some(a), None, imm);
        self
    }

    /// `dest = (a as u64) >> imm`
    pub fn srli(&mut self, dest: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Srl, Some(dest), Some(a), None, imm);
        self
    }

    /// `dest = imm`
    pub fn movi(&mut self, dest: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Movi, Some(dest), None, None, imm);
        self
    }

    /// `dest = pc_of(target)` — materialises a code address, e.g. to build
    /// a jump table for [`ProgramBuilder::jr`].
    pub fn movi_label(&mut self, dest: Reg, target: Label) -> &mut Self {
        let idx = self.insts.len();
        self.pc_fixups.push((idx, target));
        self.emit(Opcode::Movi, Some(dest), None, None, 0);
        self
    }

    /// `dest = src`
    pub fn mov(&mut self, dest: Reg, src: Reg) -> &mut Self {
        self.emit(Opcode::Mov, Some(dest), Some(src), None, 0);
        self
    }

    // ---- memory -------------------------------------------------------------

    /// `dest = mem[base + disp]`
    pub fn ld(&mut self, dest: Reg, base: Reg, disp: i64) -> &mut Self {
        self.emit(Opcode::Ld, Some(dest), Some(base), None, disp);
        self
    }

    /// `mem[base + disp] = value`
    pub fn st(&mut self, value: Reg, base: Reg, disp: i64) -> &mut Self {
        self.emit(Opcode::St, None, Some(base), Some(value), disp);
        self
    }

    /// `fdest = mem[base + disp]`
    pub fn fld(&mut self, dest: Reg, base: Reg, disp: i64) -> &mut Self {
        debug_assert!(dest.is_fp());
        self.emit(Opcode::FLd, Some(dest), Some(base), None, disp);
        self
    }

    /// `mem[base + disp] = fvalue`
    pub fn fst(&mut self, value: Reg, base: Reg, disp: i64) -> &mut Self {
        debug_assert!(value.is_fp());
        self.emit(Opcode::FSt, None, Some(base), Some(value), disp);
        self
    }

    // ---- floating point -------------------------------------------------------

    /// `dest = a + b` (FP)
    pub fn fadd(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::FAdd, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a - b` (FP)
    pub fn fsub(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::FSub, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a * b` (FP, complex unit)
    pub fn fmul(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::FMul, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = a / b` (FP, complex unit; division by zero yields 0.0)
    pub fn fdiv(&mut self, dest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::FDiv, Some(dest), Some(a), Some(b), 0);
        self
    }

    /// `dest = sqrt(a)` (FP, complex unit)
    pub fn fsqrt(&mut self, dest: Reg, a: Reg) -> &mut Self {
        self.emit(Opcode::FSqrt, Some(dest), Some(a), None, 0);
        self
    }

    /// `idest = (fa < fb) as i64`
    pub fn fcmp(&mut self, idest: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Opcode::FCmp, Some(idest), Some(a), Some(b), 0);
        self
    }

    /// `fdest = isrc as f64`
    pub fn itof(&mut self, fdest: Reg, isrc: Reg) -> &mut Self {
        self.emit(Opcode::ItoF, Some(fdest), Some(isrc), None, 0);
        self
    }

    /// `idest = fsrc as i64` (truncating)
    pub fn ftoi(&mut self, idest: Reg, fsrc: Reg) -> &mut Self {
        self.emit(Opcode::FtoI, Some(idest), Some(fsrc), None, 0);
        self
    }

    // ---- control flow -----------------------------------------------------------

    /// Branch to `target` if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.emit_branch(Opcode::Beq, Some(a), Some(b), target);
        self
    }

    /// Branch to `target` if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.emit_branch(Opcode::Bne, Some(a), Some(b), target);
        self
    }

    /// Branch to `target` if `a < b` (signed).
    pub fn blt(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.emit_branch(Opcode::Blt, Some(a), Some(b), target);
        self
    }

    /// Branch to `target` if `a >= b` (signed).
    pub fn bge(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.emit_branch(Opcode::Bge, Some(a), Some(b), target);
        self
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit_branch(Opcode::Jmp, None, None, target);
        self
    }

    /// Indirect jump to the address held in `target_reg`.
    pub fn jr(&mut self, target_reg: Reg) -> &mut Self {
        self.emit(Opcode::Jr, None, Some(target_reg), None, 0);
        self
    }

    /// Call `target`, writing the return address to [`Reg::LR`].
    pub fn call(&mut self, target: Label) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push((idx, target));
        self.insts
            .push(Instruction::new(Opcode::Call, Some(Reg::LR), None, None, 0));
        self
    }

    /// Return to the address held in [`Reg::LR`].
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Opcode::Ret, None, Some(Reg::LR), None, 0);
        self
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Opcode::Nop, None, None, None, 0);
        self
    }

    /// Stop the program.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Opcode::Halt, None, None, None, 0);
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was
    /// never bound, plus any [`Program::new`] validation error.
    pub fn try_build(mut self) -> Result<Program, ProgramError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].ok_or(ProgramError::UnboundLabel(label))?;
            self.insts[idx].imm = target as i64;
        }
        for (idx, label) in std::mem::take(&mut self.pc_fixups) {
            let target = self.labels[label.0].ok_or(ProgramError::UnboundLabel(label))?;
            self.insts[idx].imm = Program::pc_of(target) as i64;
        }
        Program::new(self.insts)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics on any error [`ProgramBuilder::try_build`] would return.
    pub fn build(self) -> Program {
        self.try_build().expect("invalid program")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.label();
        let back = b.here(); // index 0
        b.movi(Reg::R1, 1);
        b.beq(Reg::R1, Reg::ZERO, fwd);
        b.jmp(back);
        b.bind(fwd);
        b.halt();
        let p = b.build();
        assert_eq!(p.get(1).unwrap().imm, 3); // beq -> halt at idx 3 ... wait
    }

    #[test]
    fn label_targets_point_at_bound_instruction() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.movi(Reg::R1, 5); // 0
        b.jmp(done); // 1
        b.nop(); // 2
        b.bind(done);
        b.halt(); // 3
        let p = b.build();
        assert_eq!(p.get(1).unwrap().imm, 3);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        assert!(matches!(b.try_build(), Err(ProgramError::UnboundLabel(_))));
    }

    #[test]
    fn empty_program_is_an_error() {
        let b = ProgramBuilder::new();
        assert_eq!(b.try_build().unwrap_err(), ProgramError::EmptyProgram);
    }

    #[test]
    fn out_of_range_target_is_an_error() {
        let insts = vec![Instruction::new(Opcode::Jmp, None, None, None, 99)];
        assert!(matches!(
            Program::new(insts),
            Err(ProgramError::BadTarget {
                inst: 0,
                target: 99
            })
        ));
    }

    #[test]
    fn pc_index_round_trip() {
        let mut b = ProgramBuilder::new();
        for _ in 0..10 {
            b.nop();
        }
        b.halt();
        let p = b.build();
        for i in 0..p.len() {
            assert_eq!(p.index_of(Program::pc_of(i)), Some(i));
        }
        assert_eq!(p.index_of(TEXT_BASE - 4), None);
        assert_eq!(p.index_of(TEXT_BASE + 1), None);
        assert_eq!(p.index_of(Program::pc_of(p.len())), None);
    }

    #[test]
    fn display_lists_every_instruction() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 7);
        b.halt();
        let p = b.build();
        let s = p.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
