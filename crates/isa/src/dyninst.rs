//! Dynamic (executed) instructions.

use crate::{Instruction, Opcode, Reg};

/// Outcome of an executed control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// True if the control transfer redirected the PC (always true for
    /// unconditional transfers).
    pub taken: bool,
    /// The architectural next PC (target if taken, fall-through otherwise).
    pub next_pc: u64,
    /// The taken-path target PC.
    pub target: u64,
}

/// One retired, correct-path dynamic instruction: the unit of work handed
/// from the functional executor to the timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Global dynamic sequence number (0-based, dense).
    pub seq: u64,
    /// Virtual address of the instruction.
    pub pc: u64,
    /// Static instruction index within the program.
    pub index: u32,
    /// The static instruction.
    pub inst: Instruction,
    /// Effective byte address for memory operations.
    pub mem_addr: Option<u64>,
    /// Branch outcome for control-transfer instructions.
    pub branch: Option<BranchOutcome>,
}

impl DynInst {
    /// The opcode (shorthand for `self.inst.op`).
    #[inline]
    pub fn op(&self) -> Opcode {
        self.inst.op
    }

    /// Destination register, if any.
    #[inline]
    pub fn dest(&self) -> Option<Reg> {
        self.inst.dest
    }

    /// True for any control-transfer instruction.
    #[inline]
    pub fn is_cti(&self) -> bool {
        self.inst.op.is_cti()
    }

    /// True if this dynamic instance was a taken control transfer.
    #[inline]
    pub fn taken(&self) -> bool {
        self.branch.is_some_and(|b| b.taken)
    }

    /// The PC of the dynamically next instruction (target for taken
    /// branches, fall-through otherwise).
    #[inline]
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) => b.next_pc,
            None => self.pc + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction;

    fn dyn_inst(inst: Instruction, branch: Option<BranchOutcome>) -> DynInst {
        DynInst {
            seq: 0,
            pc: 0x1000,
            index: 0,
            inst,
            mem_addr: None,
            branch,
        }
    }

    #[test]
    fn next_pc_falls_through_without_branch() {
        let d = dyn_inst(Instruction::nop(), None);
        assert_eq!(d.next_pc(), 0x1004);
        assert!(!d.taken());
        assert!(!d.is_cti());
    }

    #[test]
    fn next_pc_follows_taken_branch() {
        let br = BranchOutcome {
            taken: true,
            next_pc: 0x2000,
            target: 0x2000,
        };
        let d = dyn_inst(
            Instruction::new(Opcode::Bne, None, Some(Reg::R1), Some(Reg::R2), 0),
            Some(br),
        );
        assert_eq!(d.next_pc(), 0x2000);
        assert!(d.taken());
        assert!(d.is_cti());
        assert_eq!(d.op(), Opcode::Bne);
        assert!(d.dest().is_none());
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let br = BranchOutcome {
            taken: false,
            next_pc: 0x1004,
            target: 0x2000,
        };
        let d = dyn_inst(
            Instruction::new(Opcode::Beq, None, Some(Reg::R1), Some(Reg::R2), 0),
            Some(br),
        );
        assert_eq!(d.next_pc(), 0x1004);
        assert!(!d.taken());
    }
}
