//! Functional execution of TRISC programs.

use crate::{BranchOutcome, DynInst, Opcode, Program, Reg, WordMemory, TEXT_BASE};
use std::fmt;

/// Errors the functional executor can surface mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the program's text segment.
    PcOutOfRange {
        /// The offending program counter.
        pc: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside program text"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Functional executor: runs a [`Program`] architecturally and yields the
/// correct-path dynamic instruction stream as an iterator of [`DynInst`].
///
/// The executor stops (yields `None`) at a `halt` instruction or when the
/// PC runs off the end of the program. Runaway programs should be bounded
/// by the caller with [`Iterator::take`].
///
/// # Example
///
/// ```
/// use ctcp_isa::{Executor, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(Reg::R1, 2);
/// b.addi(Reg::R1, Reg::R1, 3);
/// b.halt();
/// let p = b.build();
/// let mut ex = Executor::new(&p);
/// assert_eq!(ex.by_ref().count(), 3); // movi, add, halt
/// assert_eq!(ex.reg(Reg::R1), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    pc: u64,
    seq: u64,
    halted: bool,
    error: Option<ExecError>,
    iregs: [i64; Reg::NUM_INT],
    fregs: [f64; Reg::NUM_FP],
    mem: WordMemory,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the first instruction, with all
    /// registers zero and untouched memory. The stack pointer starts high
    /// so negative-displacement frames work out of the box.
    pub fn new(program: &'p Program) -> Self {
        let mut ex = Executor {
            program,
            pc: TEXT_BASE,
            seq: 0,
            halted: false,
            error: None,
            iregs: [0; Reg::NUM_INT],
            fregs: [0.0; Reg::NUM_FP],
            mem: WordMemory::new(),
        };
        ex.iregs[Reg::SP.index()] = 0x4000_0000;
        ex
    }

    /// Current architectural value of `reg`.
    pub fn reg(&self, reg: Reg) -> i64 {
        if reg.is_zero() {
            0
        } else if reg.is_int() {
            self.iregs[reg.index()]
        } else {
            self.fregs[reg.index() - Reg::NUM_INT] as i64
        }
    }

    /// Current architectural value of FP register `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a floating-point register.
    pub fn freg(&self, reg: Reg) -> f64 {
        assert!(reg.is_fp(), "{reg} is not an fp register");
        self.fregs[reg.index() - Reg::NUM_INT]
    }

    /// Sets an integer register (useful to parameterise workloads).
    pub fn set_reg(&mut self, reg: Reg, value: i64) {
        if !reg.is_zero() && reg.is_int() {
            self.iregs[reg.index()] = value;
        }
    }

    /// Read access to data memory.
    pub fn memory(&self) -> &WordMemory {
        &self.mem
    }

    /// Write access to data memory (for pre-initialising workload data).
    pub fn memory_mut(&mut self) -> &mut WordMemory {
        &mut self.mem
    }

    /// True once the program has executed `halt` (the `halt` itself is the
    /// final yielded instruction).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The error that ended execution, if any.
    pub fn error(&self) -> Option<ExecError> {
        self.error
    }

    #[inline]
    fn read_int(&self, r: Option<Reg>) -> i64 {
        match r {
            None => 0,
            Some(r) if r.is_zero() => 0,
            Some(r) if r.is_int() => self.iregs[r.index()],
            Some(r) => self.fregs[r.index() - Reg::NUM_INT] as i64,
        }
    }

    #[inline]
    fn read_fp(&self, r: Option<Reg>) -> f64 {
        match r {
            None => 0.0,
            Some(r) if r.is_fp() => self.fregs[r.index() - Reg::NUM_INT],
            Some(r) if r.is_zero() => 0.0,
            Some(r) => self.iregs[r.index()] as f64,
        }
    }

    #[inline]
    fn write_dest(&mut self, dest: Option<Reg>, ival: i64, fval: f64) {
        if let Some(d) = dest {
            if d.is_fp() {
                self.fregs[d.index() - Reg::NUM_INT] = fval;
            } else if !d.is_zero() {
                self.iregs[d.index()] = ival;
            }
        }
    }

    /// Executes one instruction, returning its dynamic record.
    fn step(&mut self) -> Option<DynInst> {
        if self.halted || self.error.is_some() {
            return None;
        }
        let idx = match self.program.index_of(self.pc) {
            Some(i) => i,
            None => {
                self.error = Some(ExecError::PcOutOfRange { pc: self.pc });
                return None;
            }
        };
        let inst = *self.program.get(idx).expect("index_of guarantees range");
        let pc = self.pc;
        let fallthrough = pc + 4;
        let mut mem_addr = None;
        let mut branch = None;
        let mut next_pc = fallthrough;

        // `b` selects between the RS2 register and the immediate: register
        // forms have Some(src2); immediate forms leave src2 empty.
        let a = self.read_int(inst.src1);
        let b = if inst.src2.is_some() {
            self.read_int(inst.src2)
        } else {
            inst.imm
        };
        let fa = self.read_fp(inst.src1);
        let fb = self.read_fp(inst.src2);

        match inst.op {
            Opcode::Add => self.write_dest(inst.dest, a.wrapping_add(b), 0.0),
            Opcode::Sub => self.write_dest(inst.dest, a.wrapping_sub(b), 0.0),
            Opcode::And => self.write_dest(inst.dest, a & b, 0.0),
            Opcode::Or => self.write_dest(inst.dest, a | b, 0.0),
            Opcode::Xor => self.write_dest(inst.dest, a ^ b, 0.0),
            Opcode::Sll => self.write_dest(inst.dest, a.wrapping_shl((b & 63) as u32), 0.0),
            Opcode::Srl => {
                self.write_dest(inst.dest, ((a as u64) >> (b & 63)) as i64, 0.0);
            }
            Opcode::Sra => self.write_dest(inst.dest, a >> (b & 63), 0.0),
            Opcode::Slt => self.write_dest(inst.dest, i64::from(a < b), 0.0),
            Opcode::Seq => self.write_dest(inst.dest, i64::from(a == b), 0.0),
            Opcode::Mov => self.write_dest(inst.dest, a, 0.0),
            Opcode::Movi => self.write_dest(inst.dest, inst.imm, 0.0),
            Opcode::Mul => self.write_dest(inst.dest, a.wrapping_mul(b), 0.0),
            Opcode::Div => {
                let v = if b == 0 { 0 } else { a.wrapping_div(b) };
                self.write_dest(inst.dest, v, 0.0);
            }
            Opcode::Ld => {
                let addr = (a.wrapping_add(inst.imm)) as u64 & !7;
                mem_addr = Some(addr);
                let v = self.mem.read(addr);
                self.write_dest(inst.dest, v, 0.0);
            }
            Opcode::St => {
                let addr = (a.wrapping_add(inst.imm)) as u64 & !7;
                mem_addr = Some(addr);
                let v = self.read_int(inst.src2);
                self.mem.write(addr, v);
            }
            Opcode::FLd => {
                let addr = (a.wrapping_add(inst.imm)) as u64 & !7;
                mem_addr = Some(addr);
                let v = self.mem.read_f64(addr);
                self.write_dest(inst.dest, 0, v);
            }
            Opcode::FSt => {
                let addr = (a.wrapping_add(inst.imm)) as u64 & !7;
                mem_addr = Some(addr);
                self.mem.write_f64(addr, fb);
            }
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                let cond = match inst.op {
                    Opcode::Beq => a == b,
                    Opcode::Bne => a != b,
                    Opcode::Blt => a < b,
                    _ => a >= b,
                };
                // For a conditional branch with a register RS2, `b` above
                // read the register; with no RS2 it compared against the
                // immediate, but branch immediates hold the target, so
                // treat missing RS2 as comparison against zero instead.
                let cond = if inst.src2.is_some() {
                    cond
                } else {
                    match inst.op {
                        Opcode::Beq => a == 0,
                        Opcode::Bne => a != 0,
                        Opcode::Blt => a < 0,
                        _ => a >= 0,
                    }
                };
                let target = Program::pc_of(inst.imm as usize);
                next_pc = if cond { target } else { fallthrough };
                branch = Some(BranchOutcome {
                    taken: cond,
                    next_pc,
                    target,
                });
            }
            Opcode::Jmp => {
                let target = Program::pc_of(inst.imm as usize);
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc,
                    target,
                });
            }
            Opcode::Jr => {
                let target = a as u64;
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc,
                    target,
                });
            }
            Opcode::Call => {
                let target = Program::pc_of(inst.imm as usize);
                self.write_dest(Some(Reg::LR), fallthrough as i64, 0.0);
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc,
                    target,
                });
            }
            Opcode::Ret => {
                let target = a as u64;
                next_pc = target;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc,
                    target,
                });
            }
            Opcode::FAdd => self.write_dest(inst.dest, 0, fa + fb),
            Opcode::FSub => self.write_dest(inst.dest, 0, fa - fb),
            Opcode::FMul => self.write_dest(inst.dest, 0, fa * fb),
            Opcode::FDiv => {
                let v = if fb == 0.0 { 0.0 } else { fa / fb };
                self.write_dest(inst.dest, 0, v);
            }
            Opcode::FSqrt => self.write_dest(inst.dest, 0, fa.abs().sqrt()),
            Opcode::FCmp => self.write_dest(inst.dest, i64::from(fa < fb), 0.0),
            Opcode::FMov => self.write_dest(inst.dest, 0, fa),
            Opcode::ItoF => self.write_dest(inst.dest, 0, a as f64),
            Opcode::FtoI => self.write_dest(inst.dest, fa as i64, 0.0),
            Opcode::Nop => {}
            Opcode::Halt => {
                self.halted = true;
            }
        }

        let dyn_inst = DynInst {
            seq: self.seq,
            pc,
            index: idx as u32,
            inst,
            mem_addr,
            branch,
        };
        self.seq += 1;
        self.pc = next_pc;
        Some(dyn_inst)
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn run(p: &Program, max: usize) -> (Vec<DynInst>, Executor<'_>) {
        let mut ex = Executor::new(p);
        let mut v = Vec::new();
        for _ in 0..max {
            match ex.next() {
                Some(d) => v.push(d),
                None => break,
            }
        }
        (v, ex)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 6);
        b.movi(Reg::R2, 7);
        b.mul(Reg::R3, Reg::R1, Reg::R2);
        b.halt();
        let p = b.build();
        let (stream, ex) = run(&p, 100);
        assert_eq!(stream.len(), 4);
        assert!(ex.halted());
        assert_eq!(ex.reg(Reg::R3), 42);
    }

    #[test]
    fn loop_iterates_expected_count() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 0);
        b.movi(Reg::R2, 5);
        let top = b.here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();
        let (stream, ex) = run(&p, 1000);
        assert_eq!(ex.reg(Reg::R1), 5);
        // 2 setup + 5*(add+blt) + halt
        assert_eq!(stream.len(), 2 + 10 + 1);
        // Branch taken 4 times, not taken once.
        let takens: Vec<bool> = stream
            .iter()
            .filter(|d| d.op() == Opcode::Blt)
            .map(|d| d.taken())
            .collect();
        assert_eq!(takens, vec![true, true, true, true, false]);
    }

    #[test]
    fn memory_round_trip_through_loads_and_stores() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 0x8000);
        b.movi(Reg::R2, 1234);
        b.st(Reg::R2, Reg::R1, 8);
        b.ld(Reg::R3, Reg::R1, 8);
        b.halt();
        let p = b.build();
        let (stream, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R3), 1234);
        let st = stream.iter().find(|d| d.op() == Opcode::St).unwrap();
        let ld = stream.iter().find(|d| d.op() == Opcode::Ld).unwrap();
        assert_eq!(st.mem_addr, Some(0x8008));
        assert_eq!(ld.mem_addr, Some(0x8008));
    }

    #[test]
    fn call_and_ret_transfer_control() {
        let mut b = ProgramBuilder::new();
        let func = b.label();
        b.call(func); // 0
        b.movi(Reg::R1, 1); // 1 (after return)
        b.halt(); // 2
        b.bind(func);
        b.movi(Reg::R2, 2); // 3
        b.ret(); // 4
        let p = b.build();
        let (stream, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R1), 1);
        assert_eq!(ex.reg(Reg::R2), 2);
        let pcs: Vec<u64> = stream.iter().map(|d| d.pc).collect();
        assert_eq!(
            pcs,
            vec![
                Program::pc_of(0),
                Program::pc_of(3),
                Program::pc_of(4),
                Program::pc_of(1),
                Program::pc_of(2)
            ]
        );
    }

    #[test]
    fn fp_pipeline_works() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 9);
        b.itof(Reg::fp(0), Reg::R1);
        b.fsqrt(Reg::fp(1), Reg::fp(0));
        b.ftoi(Reg::R2, Reg::fp(1));
        b.halt();
        let p = b.build();
        let (_, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R2), 3);
        assert_eq!(ex.freg(Reg::fp(1)), 3.0);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 10);
        b.movi(Reg::R2, 0);
        b.div(Reg::R3, Reg::R1, Reg::R2);
        b.halt();
        let p = b.build();
        let (_, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R3), 0);
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 3);
        let top = b.here();
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let (stream, _) = run(&p, 1000);
        for (i, d) in stream.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::ZERO, 99);
        b.add(Reg::R1, Reg::ZERO, Reg::ZERO);
        b.halt();
        let p = b.build();
        let (_, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R1), 0);
        assert_eq!(ex.reg(Reg::ZERO), 0);
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 0); // runs off the end: no halt
        let p = b.build();
        let mut ex = Executor::new(&p);
        assert!(ex.next().is_some());
        assert!(ex.next().is_none());
        assert!(matches!(ex.error(), Some(ExecError::PcOutOfRange { .. })));
    }

    #[test]
    fn indirect_jump_through_register() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, Program::pc_of(3) as i64); // 0
        b.jr(Reg::R1); // 1
        b.movi(Reg::R2, 111); // 2 skipped
        b.movi(Reg::R3, 222); // 3
        b.halt(); // 4
        let p = b.build();
        let (_, ex) = run(&p, 100);
        assert_eq!(ex.reg(Reg::R2), 0);
        assert_eq!(ex.reg(Reg::R3), 222);
    }
}
