//! Architectural registers.

use std::fmt;

/// An architectural register: 32 integer registers (`R0`–`R31`) and
/// 32 floating-point registers (`F0`–`F31`).
///
/// `R31` is hardwired to zero (Alpha convention): writes are discarded and
/// reads always return zero. `R30` is used by [`crate::ProgramBuilder`] as
/// the link register for `call`/`ret`, and `R29` as the stack pointer, but
/// nothing in the ISA enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)]
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);
    pub const R16: Reg = Reg(16);
    pub const R17: Reg = Reg(17);
    pub const R18: Reg = Reg(18);
    pub const R19: Reg = Reg(19);
    pub const R20: Reg = Reg(20);
    pub const R21: Reg = Reg(21);
    pub const R22: Reg = Reg(22);
    pub const R23: Reg = Reg(23);
    pub const R24: Reg = Reg(24);
    pub const R25: Reg = Reg(25);
    pub const R26: Reg = Reg(26);
    pub const R27: Reg = Reg(27);
    pub const R28: Reg = Reg(28);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(29);
    /// Conventional link register (written by `call`, read by `ret`).
    pub const LR: Reg = Reg(30);
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(31);
}

impl Reg {
    /// Number of integer architectural registers.
    pub const NUM_INT: usize = 32;
    /// Number of floating-point architectural registers.
    pub const NUM_FP: usize = 32;
    /// Total number of architectural registers (int + fp).
    pub const NUM: usize = Self::NUM_INT + Self::NUM_FP;

    /// Returns the `n`-th integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register index {n} out of range");
        Reg(n)
    }

    /// Returns the `n`-th floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < 32, "fp register index {n} out of range");
        Reg(32 + n)
    }

    /// Dense index in `0..Reg::NUM`, usable as a table index (e.g. for a
    /// register alias table).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a register from a dense index produced by [`Reg::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::NUM`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < Self::NUM, "register index {index} out of range");
        Reg(index as u8)
    }

    /// True for `R0`–`R31`.
    #[inline]
    pub fn is_int(self) -> bool {
        self.0 < 32
    }

    /// True for `F0`–`F31`.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// True only for the hardwired zero register [`Reg::ZERO`].
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else if self.is_zero() {
            write!(f, "zero")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_ranges_do_not_overlap() {
        for n in 0..32 {
            assert!(Reg::int(n).is_int());
            assert!(!Reg::int(n).is_fp());
            assert!(Reg::fp(n).is_fp());
            assert!(!Reg::fp(n).is_int());
            assert_ne!(Reg::int(n), Reg::fp(n));
        }
    }

    #[test]
    fn index_round_trips() {
        for i in 0..Reg::NUM {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R1.is_zero());
        assert_eq!(Reg::int(31), Reg::ZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R5.to_string(), "r5");
        assert_eq!(Reg::fp(3).to_string(), "f3");
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }

    #[test]
    #[should_panic]
    fn int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(Reg::NUM);
    }
}
