//! Store buffer with store-to-load forwarding.

use std::collections::VecDeque;

/// Result of checking a load against the store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreForward {
    /// No older store to the same word: the load goes to the cache.
    None,
    /// An older store to the same word provides the data directly.
    Forwarded {
        /// Sequence number of the forwarding store.
        store_seq: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    seq: u64,
    addr: u64,
    /// Store has left the buffer logically but is draining to the cache.
    retired: bool,
}

/// A FIFO store buffer (default 32 entries, per Table 7) holding stores
/// from dispatch until they drain to the data cache after retirement.
/// Loads probe it for store-to-load forwarding from *older* stores to the
/// same 8-byte word.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    capacity: usize,
    entries: VecDeque<StoreEntry>,
    forwards: u64,
}

impl StoreBuffer {
    /// Creates an empty buffer with room for `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        StoreBuffer {
            capacity,
            entries: VecDeque::new(),
            forwards: 0,
        }
    }

    /// True if a new store can be inserted.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a store (identified by its global sequence number) once its
    /// address is known. Returns `false` if the buffer is full.
    pub fn insert(&mut self, seq: u64, addr: u64) -> bool {
        if !self.has_room() {
            return false;
        }
        self.entries.push_back(StoreEntry {
            seq,
            addr: addr & !7,
            retired: false,
        });
        true
    }

    /// Checks whether a load with sequence `load_seq` to `addr` can forward
    /// from an older buffered store to the same word. The youngest such
    /// store wins. (Stores enter the buffer at execute time, which is out
    /// of order, so age must be compared by sequence number rather than
    /// buffer position.)
    pub fn check_load(&mut self, load_seq: u64, addr: u64) -> StoreForward {
        let addr = addr & !7;
        let hit = self
            .entries
            .iter()
            .filter(|e| e.seq < load_seq && e.addr == addr)
            .max_by_key(|e| e.seq);
        match hit {
            Some(e) => {
                self.forwards += 1;
                StoreForward::Forwarded { store_seq: e.seq }
            }
            None => StoreForward::None,
        }
    }

    /// Marks the store with sequence `seq` as retired (eligible to drain).
    pub fn mark_retired(&mut self, seq: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.retired = true;
        }
    }

    /// Drains up to `max` retired stores from the head of the buffer,
    /// returning their addresses (the caller writes them to the cache).
    pub fn drain_retired(&mut self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.entries.front() {
                Some(e) if e.retired => {
                    out.push(e.addr);
                    self.entries.pop_front();
                }
                _ => break,
            }
        }
        out
    }

    /// Removes all stores younger than or equal to `seq` (pipeline flush).
    pub fn squash_younger(&mut self, seq: u64) {
        self.entries.retain(|e| e.retired || e.seq < seq);
    }

    /// Number of successful store-to-load forwards observed.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_from_older_store() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(10, 0x1000);
        assert_eq!(
            sb.check_load(20, 0x1000),
            StoreForward::Forwarded { store_seq: 10 }
        );
        assert_eq!(sb.forwards(), 1);
    }

    #[test]
    fn no_forwarding_from_younger_store() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(30, 0x1000);
        assert_eq!(sb.check_load(20, 0x1000), StoreForward::None);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(10, 0x1000);
        sb.insert(15, 0x1000);
        assert_eq!(
            sb.check_load(20, 0x1000),
            StoreForward::Forwarded { store_seq: 15 }
        );
    }

    #[test]
    fn word_granularity() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(10, 0x1000);
        // Same word, different byte offset.
        assert!(matches!(
            sb.check_load(20, 0x1004),
            StoreForward::Forwarded { .. }
        ));
        // Different word.
        assert_eq!(sb.check_load(20, 0x1008), StoreForward::None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.insert(1, 0));
        assert!(sb.insert(2, 8));
        assert!(!sb.insert(3, 16));
        assert!(!sb.has_room());
    }

    #[test]
    fn drain_respects_retirement_and_order() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0x10);
        sb.insert(2, 0x20);
        sb.insert(3, 0x30);
        sb.mark_retired(1);
        sb.mark_retired(3);
        // Only the head run of retired stores drains.
        assert_eq!(sb.drain_retired(4), vec![0x10]);
        sb.mark_retired(2);
        assert_eq!(sb.drain_retired(1), vec![0x20]);
        assert_eq!(sb.drain_retired(4), vec![0x30]);
        assert!(sb.is_empty());
    }

    #[test]
    fn squash_removes_speculative_stores() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0x10);
        sb.insert(5, 0x20);
        sb.squash_younger(5);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.check_load(9, 0x20), StoreForward::None);
        assert!(matches!(
            sb.check_load(9, 0x10),
            StoreForward::Forwarded { .. }
        ));
    }
}
