//! # Data memory hierarchy for the CTCP simulator
//!
//! Models the data-side memory system of the baseline architecture
//! (Table 7 of Bhargava & John, ISCA 2003):
//!
//! * L1 data cache: 4-way, 32 KB, 2-cycle access, non-blocking with
//!   16 MSHRs and 4 ports,
//! * L2 unified cache: 4-way, 1 MB, +8 cycles,
//! * D-TLB: 128-entry, 4-way, 1-cycle hit, 30-cycle miss,
//! * 32-entry store buffer with load forwarding,
//! * 32-entry load queue with no speculative disambiguation,
//! * infinite main memory at +65 cycles.
//!
//! The central type is [`DataMemory`], which composes the pieces and
//! returns an access latency for each load or store the execution core
//! performs. The generic [`SetAssocCache`] model is also used by the
//! instruction cache in the front-end crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod load_queue;
mod mshr;
mod store_buffer;
mod tlb;

pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use hierarchy::{AccessKind, AccessResult, DataMemory, MemoryConfig};
pub use load_queue::LoadQueue;
pub use mshr::MshrFile;
pub use store_buffer::{StoreBuffer, StoreForward};
pub use tlb::{Tlb, TlbConfig};
