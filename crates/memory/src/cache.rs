//! Generic set-associative cache model (tags + true-LRU, no data).

/// Geometry and latency of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency on a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity smaller
    /// than one way, or non-power-of-two line size).
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(self.assoc > 0 && self.size_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines as usize >= self.assoc,
            "capacity smaller than one set"
        );
        (lines as usize) / self.assoc
    }
}

/// Hit/miss counters for a cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative cache with true-LRU replacement. Only tags are
/// modelled — the simulator never needs cached data, just hit/miss timing.
///
/// # Example
///
/// ```
/// use ctcp_memory::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig {
///     size_bytes: 1024,
///     assoc: 2,
///     line_bytes: 64,
///     hit_latency: 2,
/// });
/// assert!(!c.access(0x100)); // cold miss
/// assert!(c.access(0x100)); // now hot
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    tick: u64,
    offset_bits: u32,
    index_mask: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is degenerate (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets.is_power_of_two(), "set count must be 2^n");
        SetAssocCache {
            config,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        lru: 0
                    };
                    config.assoc
                ];
                num_sets
            ],
            stats: CacheStats::default(),
            tick: 0,
            offset_bits: config.line_bytes.trailing_zeros(),
            index_mask: num_sets as u64 - 1,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn decompose(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.offset_bits;
        (
            (line & self.index_mask) as usize,
            line >> self.sets.len().trailing_zeros(),
        )
    }

    /// The line-aligned base address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Accesses `addr`, allocating the line on a miss (LRU victim).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (index, tag) = self.decompose(addr);
        let set = &mut self.sets[index];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("assoc > 0");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        false
    }

    /// Checks residency without updating LRU, stats, or contents.
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.decompose(addr);
        self.sets[index].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates the line containing `addr`, if resident. Returns whether
    /// a line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (index, tag) = self.decompose(addr);
        if let Some(way) = self.sets[index]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.valid = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f)); // same line
        assert!(!c.access(0x40)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = num_sets * line = 256).
        c.access(0x000);
        c.access(0x100);
        c.access(0x000); // touch A again; B is now LRU
        c.access(0x200); // evicts B
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x0);
        let before = c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0x0);
        assert!(c.invalidate(0x0));
        assert!(!c.probe(0x0));
        assert!(!c.invalidate(0x0));
    }

    #[test]
    fn distinct_tags_same_set_coexist_up_to_assoc() {
        let mut c = small();
        c.access(0x000);
        c.access(0x100);
        assert!(c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(0x40);
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = small();
        assert_eq!(c.line_addr(0x7f), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
    }

    #[test]
    #[should_panic]
    fn degenerate_geometry_panics() {
        let _ = SetAssocCache::new(CacheConfig {
            size_bytes: 64,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 1,
        });
    }
}
