//! Data TLB model.

use crate::{CacheConfig, CacheStats, SetAssocCache};

/// D-TLB geometry and latencies (defaults match Table 7: 128-entry,
/// 4-way, 1-cycle hit, 30-cycle miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Additional latency of a miss (page walk), in cycles.
    pub miss_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 128,
            assoc: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_latency: 30,
        }
    }
}

/// A translation lookaside buffer: a set-associative tag array over page
/// numbers with a fixed miss (walk) penalty.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: SetAssocCache,
    config: TlbConfig,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let inner = SetAssocCache::new(CacheConfig {
            size_bytes: config.entries as u64 * config.page_bytes,
            assoc: config.assoc,
            line_bytes: config.page_bytes,
            hit_latency: config.hit_latency,
        });
        Tlb { inner, config }
    }

    /// Translates `addr`, returning the lookup latency (hit latency, plus
    /// the walk penalty on a miss). The entry is filled on a miss.
    pub fn translate(&mut self, addr: u64) -> u64 {
        if self.inner.access(addr) {
            self.config.hit_latency
        } else {
            self.config.hit_latency + self.config.miss_latency
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(TlbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_latencies() {
        let mut t = Tlb::default();
        assert_eq!(t.translate(0x1_0000), 31);
        assert_eq!(t.translate(0x1_0008), 1); // same page
        assert_eq!(t.translate(0x2_0000), 31); // new page
    }

    #[test]
    fn covers_configured_entry_count() {
        let mut t = Tlb::new(TlbConfig {
            entries: 8,
            assoc: 2,
            ..TlbConfig::default()
        });
        // Touch 8 distinct pages: all fit.
        for p in 0..8u64 {
            t.translate(p * 4096);
        }
        for p in 0..8u64 {
            assert_eq!(t.translate(p * 4096), 1, "page {p} should be resident");
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut t = Tlb::default();
        t.translate(0);
        t.translate(0);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }
}
