//! Miss status holding registers for a non-blocking cache.

use std::collections::HashMap;

/// A file of miss status holding registers (MSHRs).
///
/// Each outstanding cache-line miss occupies one MSHR until its fill
/// completes. Misses to a line that is already outstanding merge into the
/// existing MSHR (and see its remaining latency). When all MSHRs are busy
/// a new miss must wait until the earliest fill frees one.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// line address -> cycle at which the fill completes
    outstanding: HashMap<u64, u64>,
    /// Total merges observed (secondary misses to an outstanding line).
    merges: u64,
    /// Total cycles spent waiting because the file was full.
    full_stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file must have at least one register");
        MshrFile {
            capacity,
            outstanding: HashMap::new(),
            merges: 0,
            full_stalls: 0,
        }
    }

    /// Drops entries whose fills have completed by `now`.
    pub fn expire(&mut self, now: u64) {
        self.outstanding.retain(|_, &mut done| done > now);
    }

    /// Registers a miss for `line_addr` issued at `now` whose fill takes
    /// `fill_latency` cycles. Returns the cycle at which the data is
    /// available, accounting for merging and structural stalls.
    pub fn allocate(&mut self, line_addr: u64, now: u64, fill_latency: u64) -> u64 {
        self.expire(now);
        if let Some(&done) = self.outstanding.get(&line_addr) {
            self.merges += 1;
            return done;
        }
        let start = if self.outstanding.len() >= self.capacity {
            // Wait for the earliest fill to free a register.
            let earliest = self
                .outstanding
                .values()
                .copied()
                .min()
                .expect("file is full, so non-empty");
            self.full_stalls += earliest.saturating_sub(now);
            // That register is now free for reuse.
            let stale: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(_, &d)| d <= earliest)
                .map(|(&a, _)| a)
                .collect();
            for a in stale {
                self.outstanding.remove(&a);
            }
            earliest
        } else {
            now
        };
        let done = start + fill_latency;
        self.outstanding.insert(line_addr, done);
        done
    }

    /// True if a miss for `line_addr` is currently outstanding at `now`.
    pub fn is_outstanding(&self, line_addr: u64, now: u64) -> bool {
        self.outstanding.get(&line_addr).is_some_and(|&d| d > now)
    }

    /// Number of registers currently in use (after expiring at `now`).
    pub fn in_use(&mut self, now: u64) -> usize {
        self.expire(now);
        self.outstanding.len()
    }

    /// Number of secondary misses that merged into an existing register.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total cycles of structural stall due to a full file.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_miss_takes_fill_latency() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(0x100, 10, 65), 75);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        let done = m.allocate(0x100, 10, 65);
        // A later miss to the same line sees the same completion.
        assert_eq!(m.allocate(0x100, 20, 65), done);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_delays_new_miss() {
        let mut m = MshrFile::new(2);
        let d0 = m.allocate(0x000, 0, 10); // done 10
        let _d1 = m.allocate(0x100, 0, 20); // done 20
                                            // Third distinct line must wait for the first fill (cycle 10).
        let d2 = m.allocate(0x200, 0, 5);
        assert_eq!(d0, 10);
        assert_eq!(d2, 15);
        assert!(m.full_stalls() >= 10);
    }

    #[test]
    fn entries_expire() {
        let mut m = MshrFile::new(1);
        m.allocate(0x0, 0, 10);
        assert!(m.is_outstanding(0x0, 5));
        assert!(!m.is_outstanding(0x0, 10));
        assert_eq!(m.in_use(10), 0);
        // Capacity is free again: a new miss starts immediately.
        assert_eq!(m.allocate(0x40, 12, 7), 19);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
