//! The composed data memory system.

use crate::{CacheConfig, LoadQueue, MshrFile, SetAssocCache, StoreBuffer, Tlb, TlbConfig};

/// Kind of data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (integer or FP).
    Load,
    /// A store (integer or FP).
    Store,
}

/// Configuration of the whole data memory system. Defaults match Table 7
/// of the paper.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// L1 data cache geometry (default: 32 KB, 4-way, 2-cycle).
    pub l1: CacheConfig,
    /// Unified L2 geometry (default: 1 MB, 4-way, +8 cycles).
    pub l2: CacheConfig,
    /// D-TLB configuration.
    pub tlb: TlbConfig,
    /// Main memory latency beyond an L2 miss (+65 cycles).
    pub main_memory_latency: u64,
    /// Number of MSHRs on the L1 (16).
    pub mshrs: usize,
    /// Number of L1 access ports (4).
    pub l1_ports: usize,
    /// Store buffer entries (32).
    pub store_buffer_entries: usize,
    /// Load queue entries (32).
    pub load_queue_entries: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 8,
            },
            tlb: TlbConfig::default(),
            main_memory_latency: 65,
            mshrs: 16,
            l1_ports: 4,
            store_buffer_entries: 32,
            load_queue_entries: 32,
        }
    }
}

/// Timing outcome of a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the access completes (data available / store done).
    pub ready_cycle: u64,
    /// Whether the L1 hit.
    pub l1_hit: bool,
    /// Whether the L2 hit (only meaningful when `l1_hit` is false).
    pub l2_hit: bool,
    /// Cycles spent in address translation.
    pub tlb_cycles: u64,
}

/// The data memory system: L1D + L2 + TLB + MSHRs + ports, plus the store
/// buffer and load queue the execution core coordinates with.
///
/// # Example
///
/// ```
/// use ctcp_memory::{AccessKind, DataMemory, MemoryConfig};
///
/// let mut dm = DataMemory::new(MemoryConfig::default());
/// let cold = dm.access(AccessKind::Load, 0x1_0000, 0);
/// let warm = dm.access(AccessKind::Load, 0x1_0000, cold.ready_cycle);
/// assert!(warm.ready_cycle - cold.ready_cycle < cold.ready_cycle + 1);
/// assert!(warm.l1_hit);
/// ```
#[derive(Debug, Clone)]
pub struct DataMemory {
    config: MemoryConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: Tlb,
    mshrs: MshrFile,
    store_buffer: StoreBuffer,
    load_queue: LoadQueue,
    port_cycle: u64,
    ports_used: usize,
}

impl DataMemory {
    /// Creates a cold memory system.
    pub fn new(config: MemoryConfig) -> Self {
        DataMemory {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            tlb: Tlb::new(config.tlb),
            mshrs: MshrFile::new(config.mshrs),
            store_buffer: StoreBuffer::new(config.store_buffer_entries),
            load_queue: LoadQueue::new(config.load_queue_entries),
            config,
            port_cycle: 0,
            ports_used: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The store buffer (the core drives insert/forward/drain).
    pub fn store_buffer(&mut self) -> &mut StoreBuffer {
        &mut self.store_buffer
    }

    /// The load queue (the core drives insert/remove).
    pub fn load_queue(&mut self) -> &mut LoadQueue {
        &mut self.load_queue
    }

    /// MSHRs still in flight at `now` (expired entries are pruned
    /// first, so this is an exact occupancy sample).
    pub fn mshr_in_use(&mut self, now: u64) -> usize {
        self.mshrs.in_use(now)
    }

    /// Load-queue entries currently occupied.
    pub fn load_queue_len(&self) -> usize {
        self.load_queue.len()
    }

    /// L1 data cache statistics.
    pub fn l1_stats(&self) -> crate::CacheStats {
        self.l1.stats()
    }

    /// L2 cache statistics.
    pub fn l2_stats(&self) -> crate::CacheStats {
        self.l2.stats()
    }

    /// D-TLB statistics.
    pub fn tlb_stats(&self) -> crate::CacheStats {
        self.tlb.stats()
    }

    /// Acquires an L1 port at or after `now`, returning the cycle the
    /// access may begin.
    fn acquire_port(&mut self, now: u64) -> u64 {
        let mut start = now.max(self.port_cycle);
        if start > self.port_cycle {
            self.port_cycle = start;
            self.ports_used = 0;
        }
        if self.ports_used >= self.config.l1_ports {
            start += 1;
            self.port_cycle = start;
            self.ports_used = 0;
        }
        self.ports_used += 1;
        start
    }

    /// Performs a timed access for a load or store executing at `now`.
    /// Cache and TLB state are updated; the returned
    /// [`AccessResult::ready_cycle`] is when data is available (loads) or
    /// the access completes (stores).
    ///
    /// Store-to-load forwarding is checked by the core against
    /// [`DataMemory::store_buffer`] *before* calling this, so `access` only
    /// models the cache path.
    pub fn access(&mut self, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        let start = self.acquire_port(now);
        let tlb_cycles = self.tlb.translate(addr);
        let t = start + tlb_cycles;
        let line = self.l1.line_addr(addr);
        let l1_hit = self.l1.access(addr);
        if l1_hit {
            // The tag array installs lines eagerly at miss time, so a
            // "hit" to a line whose fill is still in flight must wait for
            // the outstanding MSHR (a secondary miss, in effect).
            let hit_ready = t + self.config.l1.hit_latency;
            let ready_cycle = if self.mshrs.is_outstanding(line, t) {
                self.mshrs.allocate(line, t, 0).max(hit_ready)
            } else {
                hit_ready
            };
            return AccessResult {
                ready_cycle,
                l1_hit: true,
                l2_hit: false,
                tlb_cycles,
            };
        }
        let l2_hit = self.l2.access(addr);
        let fill = self.config.l1.hit_latency
            + self.config.l2.hit_latency
            + if l2_hit {
                0
            } else {
                self.config.main_memory_latency
            };
        let ready_cycle = match kind {
            AccessKind::Load => self.mshrs.allocate(line, t, fill),
            // Stores complete into the store buffer; the miss is absorbed
            // after retirement, so the store itself is done after the TLB
            // and L1 write-port access.
            AccessKind::Store => t + self.config.l1.hit_latency,
        };
        AccessResult {
            ready_cycle,
            l1_hit: false,
            l2_hit,
            tlb_cycles,
        }
    }

    /// Applies retired-store drains to the cache hierarchy (write
    /// allocate, no timing effect on the pipeline).
    pub fn drain_stores(&mut self, max: usize) {
        let addrs = self.store_buffer.drain_retired(max);
        for a in addrs {
            if !self.l1.access(a) {
                self.l2.access(a);
            }
        }
    }
}

impl Default for DataMemory {
    fn default() -> Self {
        DataMemory::new(MemoryConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_load_pays_full_hierarchy() {
        let mut dm = DataMemory::default();
        let r = dm.access(AccessKind::Load, 0x10_0000, 0);
        assert!(!r.l1_hit);
        assert!(!r.l2_hit);
        // TLB miss (31) + L1 (2) + L2 (8) + memory (65)
        assert_eq!(r.ready_cycle, 31 + 2 + 8 + 65);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut dm = DataMemory::default();
        let c = dm.access(AccessKind::Load, 0x10_0000, 0);
        let r = dm.access(AccessKind::Load, 0x10_0000, c.ready_cycle);
        assert!(r.l1_hit);
        assert_eq!(r.ready_cycle, c.ready_cycle + 1 + 2); // TLB hit + L1 hit
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut dm = DataMemory::default();
        // Fill L2 and L1 with the line, then evict from L1 by conflict.
        dm.access(AccessKind::Load, 0x0, 0);
        // 4-way 32KB/64B: sets = 128, way stride = 8KB. Five conflicting
        // lines evict the first.
        for i in 1..=4u64 {
            dm.access(AccessKind::Load, i * 8192, 1000 + i);
        }
        let r = dm.access(AccessKind::Load, 0x0, 10_000);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
        assert_eq!(r.ready_cycle, 10_000 + 1 + 2 + 8);
    }

    #[test]
    fn stores_do_not_wait_for_memory() {
        let mut dm = DataMemory::default();
        let r = dm.access(AccessKind::Store, 0x20_0000, 0);
        assert!(!r.l1_hit);
        // TLB miss + L1 write-port only.
        assert_eq!(r.ready_cycle, 31 + 2);
    }

    #[test]
    fn ports_throttle_bandwidth() {
        let mut dm = DataMemory::default();
        // Warm the TLB and L1 first.
        dm.access(AccessKind::Load, 0x0, 0);
        let base = 1_000;
        let mut latest = 0;
        for _ in 0..5 {
            let r = dm.access(AccessKind::Load, 0x0, base);
            latest = latest.max(r.ready_cycle);
        }
        // The 5th access on a 4-port cache starts a cycle late.
        assert_eq!(latest, base + 1 + 1 + 2);
    }

    #[test]
    fn overlapping_misses_merge_in_mshrs() {
        let mut dm = DataMemory::default();
        let a = dm.access(AccessKind::Load, 0x40_0000, 0);
        let b = dm.access(AccessKind::Load, 0x40_0008, 0); // same line
        assert_eq!(a.ready_cycle, b.ready_cycle);
    }

    #[test]
    fn drain_installs_lines() {
        let mut dm = DataMemory::default();
        dm.store_buffer().insert(1, 0x8_0000);
        dm.store_buffer().mark_retired(1);
        dm.drain_stores(4);
        // The drained line is now resident.
        dm.access(AccessKind::Load, 0x8_0000, 100);
        let r = dm.access(AccessKind::Load, 0x8_0000, 200);
        assert!(r.l1_hit);
    }
}
