//! Load queue.

use std::collections::VecDeque;

/// A load queue (default 32 entries, per Table 7) tracking in-flight loads.
///
/// The paper's load queue performs **no speculative disambiguation**: a
/// load may not issue while an older store's address is still unknown. The
/// queue itself only tracks occupancy and ordering; the issue-time check
/// against unresolved stores is made by the execution core, which knows
/// store address-generation status.
#[derive(Debug, Clone)]
pub struct LoadQueue {
    capacity: usize,
    loads: VecDeque<u64>,
}

impl LoadQueue {
    /// Creates an empty queue with room for `capacity` loads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LoadQueue {
            capacity,
            loads: VecDeque::new(),
        }
    }

    /// True if a new load can be inserted.
    pub fn has_room(&self) -> bool {
        self.loads.len() < self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when no loads are queued.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Inserts a load by sequence number (allocated at dispatch; clusters
    /// dispatch independently, so insertion order may not be sequence
    /// order). Returns `false` when full.
    pub fn insert(&mut self, seq: u64) -> bool {
        if !self.has_room() {
            return false;
        }
        self.loads.push_back(seq);
        true
    }

    /// Removes a completed or retired load.
    pub fn remove(&mut self, seq: u64) {
        if let Some(pos) = self.loads.iter().position(|&s| s == seq) {
            self.loads.remove(pos);
        }
    }

    /// Removes all loads with sequence ≥ `seq` (pipeline flush).
    pub fn squash_younger(&mut self, seq: u64) {
        self.loads.retain(|&s| s < seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut lq = LoadQueue::new(2);
        assert!(lq.insert(1));
        assert!(lq.insert(2));
        assert!(!lq.insert(3));
        assert_eq!(lq.len(), 2);
    }

    #[test]
    fn remove_frees_room() {
        let mut lq = LoadQueue::new(1);
        lq.insert(7);
        assert!(!lq.has_room());
        lq.remove(7);
        assert!(lq.has_room());
        assert!(lq.is_empty());
    }

    #[test]
    fn squash_younger_keeps_older() {
        let mut lq = LoadQueue::new(8);
        for s in [1, 3, 5, 7] {
            lq.insert(s);
        }
        lq.squash_younger(5);
        assert_eq!(lq.len(), 2);
    }
}
