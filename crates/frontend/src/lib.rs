//! # Instruction fetch front-end for the CTCP simulator
//!
//! Branch prediction and the conventional instruction cache path of the
//! baseline architecture (Table 7 of Bhargava & John, ISCA 2003):
//!
//! * 16k-entry gshare/bimodal hybrid branch predictor,
//! * 512-entry, 4-way branch target buffer,
//! * return address stack,
//! * 4 KB, 4-way, 2-cycle L1 instruction cache.
//!
//! The trace cache itself lives in the `ctcp-tracecache` crate; this crate
//! provides the predictor the trace cache consults for multiple-branch
//! prediction and the instruction cache used on trace cache misses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod icache;
mod predictor;
mod ras;

pub use btb::{Btb, BtbConfig};
pub use icache::{ICache, ICacheConfig};
pub use predictor::{
    BimodalPredictor, BranchPredictor, GsharePredictor, HybridConfig, HybridPredictor,
    PredictorStats,
};
pub use ras::ReturnAddressStack;
