//! L1 instruction cache.

use ctcp_memory::{CacheConfig, CacheStats, SetAssocCache};

/// Instruction cache geometry and latencies (defaults match Table 7:
/// 4 KB, 4-way, 2-cycle access; misses refill from the unified L2/memory
/// path with a fixed penalty supplied by the caller's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss penalty in cycles (L2 hit assumed; instruction footprints in
    /// the simulator fit in L2).
    pub miss_penalty: u64,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            size_bytes: 4 * 1024,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 2,
            miss_penalty: 8,
        }
    }
}

/// The L1 instruction cache: returns a fetch latency per access and
/// tracks hit/miss statistics.
#[derive(Debug, Clone)]
pub struct ICache {
    inner: SetAssocCache,
    config: ICacheConfig,
}

impl ICache {
    /// Creates a cold instruction cache.
    pub fn new(config: ICacheConfig) -> Self {
        ICache {
            inner: SetAssocCache::new(CacheConfig {
                size_bytes: config.size_bytes,
                assoc: config.assoc,
                line_bytes: config.line_bytes,
                hit_latency: config.hit_latency,
            }),
            config,
        }
    }

    /// Fetches the line containing `pc`, returning the access latency
    /// (hit latency, plus the miss penalty on a miss).
    pub fn fetch(&mut self, pc: u64) -> u64 {
        if self.inner.access(pc) {
            self.config.hit_latency
        } else {
            self.config.hit_latency + self.config.miss_penalty
        }
    }

    /// True if fetching `pc` and `other` touches the same cache line.
    pub fn same_line(&self, pc: u64, other: u64) -> bool {
        self.inner.line_addr(pc) == self.inner.line_addr(other)
    }

    /// The configuration in use.
    pub fn config(&self) -> &ICacheConfig {
        &self.config
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

impl Default for ICache {
    fn default() -> Self {
        ICache::new(ICacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_latency() {
        let mut ic = ICache::default();
        assert_eq!(ic.fetch(0x1000), 10);
        assert_eq!(ic.fetch(0x1004), 2); // same line
        assert_eq!(ic.fetch(0x1040), 10); // next line
    }

    #[test]
    fn same_line_detection() {
        let ic = ICache::default();
        assert!(ic.same_line(0x1000, 0x103f));
        assert!(!ic.same_line(0x1000, 0x1040));
    }

    #[test]
    fn stats_accumulate() {
        let mut ic = ICache::default();
        ic.fetch(0);
        ic.fetch(0);
        assert_eq!(ic.stats().hits, 1);
        assert_eq!(ic.stats().misses, 1);
    }
}
