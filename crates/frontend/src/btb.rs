//! Branch target buffer.

/// BTB geometry (default: 512 entries, 4-way — Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig {
            entries: 512,
            assoc: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative branch target buffer mapping branch PCs to predicted
/// targets.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power-of-two multiple of `assoc`.
    pub fn new(config: BtbConfig) -> Self {
        assert!(config.assoc > 0 && config.entries.is_multiple_of(config.assoc));
        let num_sets = config.entries / config.assoc;
        assert!(num_sets.is_power_of_two());
        Btb {
            sets: vec![
                vec![
                    BtbEntry {
                        tag: 0,
                        target: 0,
                        valid: false,
                        lru: 0
                    };
                    config.assoc
                ];
                num_sets
            ],
            set_mask: num_sets as u64 - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn decompose(&self, pc: u64) -> (usize, u64) {
        let word = pc >> 2;
        (
            (word & self.set_mask) as usize,
            word >> self.sets.len().trailing_zeros(),
        )
    }

    /// Looks up the predicted target for the branch at `pc`, updating LRU
    /// and hit/miss counters.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let (set, tag) = self.decompose(pc);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == tag) {
            e.lru = self.tick;
            self.hits += 1;
            Some(e.target)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Side-effect-free target probe (no LRU/stat update).
    pub fn probe(&self, pc: u64) -> Option<u64> {
        let (set, tag) = self.decompose(pc);
        self.sets[set]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.target)
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let (set, tag) = self.decompose(pc);
        let set = &mut self.sets[set];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.lru = self.tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("assoc > 0");
        *victim = BtbEntry {
            tag,
            target,
            valid: true,
            lru: self.tick,
        };
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for Btb {
    fn default() -> Self {
        Btb::new(BtbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::default();
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    fn update_replaces_target() {
        let mut b = Btb::default();
        b.update(0x1000, 0x2000);
        b.update(0x1000, 0x3000);
        assert_eq!(b.probe(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_within_a_set() {
        let mut b = Btb::new(BtbConfig {
            entries: 8,
            assoc: 2,
        });
        // 4 sets; PCs with the same (pc>>2)&3 collide. Set 0: word
        // multiples of 4 -> pc multiples of 16.
        b.update(0x00, 1);
        b.update(0x10, 2);
        b.lookup(0x00); // refresh A
        b.update(0x20, 3); // evicts B
        assert_eq!(b.probe(0x00), Some(1));
        assert_eq!(b.probe(0x10), None);
        assert_eq!(b.probe(0x20), Some(3));
    }

    #[test]
    fn probe_is_pure() {
        let mut b = Btb::default();
        b.update(0x40, 0x80);
        let (h, m) = b.stats();
        assert_eq!(b.probe(0x40), Some(0x80));
        assert_eq!(b.stats(), (h, m));
    }
}
