//! Return address stack.

/// A fixed-depth return address stack used to predict `ret` targets.
///
/// Overflow wraps (oldest entry is lost); underflow returns `None`.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates an empty stack with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Peeks without popping.
    pub fn top(&self) -> Option<u64> {
        self.stack.last().copied()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl Default for ReturnAddressStack {
    fn default() -> Self {
        ReturnAddressStack::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn top_does_not_pop() {
        let mut r = ReturnAddressStack::default();
        r.push(42);
        assert_eq!(r.top(), Some(42));
        assert_eq!(r.len(), 1);
    }
}
