//! Direction predictors: bimodal, gshare, and the paper's hybrid.

/// Accuracy counters for a direction predictor.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredictorStats {
    /// Predictions that matched the outcome.
    pub correct: u64,
    /// Predictions that did not.
    pub incorrect: u64,
}

impl PredictorStats {
    /// Total number of predictions.
    pub fn predictions(&self) -> u64 {
        self.correct + self.incorrect
    }

    /// Misprediction ratio in `[0, 1]`; zero when nothing was predicted.
    pub fn mispredict_rate(&self) -> f64 {
        let n = self.predictions();
        if n == 0 {
            0.0
        } else {
            self.incorrect as f64 / n as f64
        }
    }
}

/// A conditional-branch direction predictor.
///
/// `predict` must not change predictor state — the simulator may predict
/// the same branch several times per cycle (multiple-branch prediction
/// for a trace line). Pattern-table training happens in `update`
/// (typically at retirement); the *global history register* is advanced
/// separately by `update_history`, which the front-end calls at fetch
/// time with the resolved direction — the standard speculative-history
/// arrangement, without which history-based predictors see a stale
/// history register and cannot track per-branch patterns.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`. Must be side-effect
    /// free.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the pattern tables with the resolved outcome of the branch
    /// at `pc` (history registers are *not* advanced here).
    fn update(&mut self, pc: u64, taken: bool);

    /// Advances any global history with a resolved branch direction
    /// (called once per fetched branch, in fetch order). Default: no-op.
    fn update_history(&mut self, taken: bool) {
        let _ = taken;
    }

    /// Accuracy counters accumulated by `update` (an update counts as
    /// correct if `predict` would have returned the outcome at that time).
    fn stats(&self) -> PredictorStats;
}

#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// A classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by PC.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<u8>,
    mask: u64,
    stats: PredictorStats,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialised to weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        BimodalPredictor {
            table: vec![2; entries],
            mask: entries as u64 - 1,
            stats: PredictorStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        if counter_taken(self.table[i]) == taken {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        counter_update(&mut self.table[i], taken);
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// A gshare predictor: 2-bit counters indexed by PC XOR global history.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
    stats: PredictorStats,
}

impl GsharePredictor {
    /// Creates a predictor with `entries` counters (power of two) and a
    /// global history register of `log2(entries)` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        GsharePredictor {
            table: vec![2; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits: entries.trailing_zeros(),
            stats: PredictorStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// The current global history register value (for tests).
    pub fn history(&self) -> u64 {
        self.history
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        if counter_taken(self.table[i]) == taken {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        counter_update(&mut self.table[i], taken);
    }

    fn update_history(&mut self, taken: bool) {
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// Configuration of the hybrid predictor (defaults: 16k-entry tables,
/// matching Table 7's "16k-entry gshare/bimodal hybrid").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Entries in each component table and the chooser (power of two).
    pub entries: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { entries: 16 * 1024 }
    }
}

/// The baseline's hybrid predictor: gshare and bimodal components with a
/// per-PC chooser table of 2-bit counters (McFarling-style).
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    gshare: GsharePredictor,
    bimodal: BimodalPredictor,
    chooser: Vec<u8>,
    mask: u64,
    stats: PredictorStats,
    /// Telemetry: total `predict` calls, including the multiple-branch
    /// predictions a trace-cache lookup performs that never reach
    /// `update`. A `Cell` because `predict` takes `&self` and must
    /// leave prediction state untouched — a pure lookup count is not
    /// prediction state.
    lookups: std::cell::Cell<u64>,
}

impl HybridPredictor {
    /// Creates the hybrid with all component tables sized per `config`.
    pub fn new(config: HybridConfig) -> Self {
        HybridPredictor {
            gshare: GsharePredictor::new(config.entries),
            bimodal: BimodalPredictor::new(config.entries),
            chooser: vec![2; config.entries],
            mask: config.entries as u64 - 1,
            stats: PredictorStats::default(),
            lookups: std::cell::Cell::new(0),
        }
    }

    #[inline]
    fn choose_gshare(&self, pc: u64) -> bool {
        counter_taken(self.chooser[((pc >> 2) & self.mask) as usize])
    }

    /// Total direction lookups performed (telemetry; see the `lookups`
    /// field). Unlike [`PredictorStats::predictions`], this also counts
    /// trace-cache multi-branch predictions that are never trained.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }
}

impl Default for HybridPredictor {
    fn default() -> Self {
        HybridPredictor::new(HybridConfig::default())
    }
}

impl BranchPredictor for HybridPredictor {
    fn predict(&self, pc: u64) -> bool {
        self.lookups.set(self.lookups.get() + 1);
        if self.choose_gshare(pc) {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        // Recompute the final prediction from the components directly:
        // going through `predict` would count a phantom lookup.
        let final_pred = if self.choose_gshare(pc) { g } else { b };
        if final_pred == taken {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        // Train the chooser toward the component that was right.
        if g != b {
            let i = ((pc >> 2) & self.mask) as usize;
            counter_update(&mut self.chooser[i], g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);
    }

    fn update_history(&mut self, taken: bool) {
        self.gshare.update_history(taken);
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = BimodalPredictor::new(1024);
        for _ in 0..10 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        for _ in 0..10 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut p = BimodalPredictor::new(64);
        for _ in 0..100 {
            p.update(0x40, false);
        }
        // One taken flips a saturated counter to 1 (still not-taken).
        p.update(0x40, true);
        assert!(!p.predict(0x40));
    }

    #[test]
    fn gshare_separates_by_history() {
        let mut p = GsharePredictor::new(1024);
        // Alternating pattern T,N,T,N at one PC: bimodal can't learn it,
        // gshare can once history distinguishes the phases.
        let mut correct = 0;
        let mut taken = true;
        for i in 0..400 {
            if p.predict(0x2000) == taken && i >= 200 {
                correct += 1;
            }
            p.update(0x2000, taken);
            p.update_history(taken);
            taken = !taken;
        }
        assert!(correct as f64 / 200.0 > 0.95, "gshare correct={correct}");
    }

    #[test]
    fn predict_is_pure() {
        let p = {
            let mut p = GsharePredictor::new(256);
            p.update(0x10, true);
            p.update_history(true);
            p
        };
        let a = p.predict(0x10);
        let b = p.predict(0x10);
        assert_eq!(a, b);
        assert_eq!(p.history(), 1);
    }

    #[test]
    fn hybrid_beats_components_on_mixed_workload() {
        let mut h = HybridPredictor::new(HybridConfig { entries: 4096 });
        // Branch A is strongly biased (bimodal-friendly); branch B
        // alternates (gshare-friendly once history kicks in).
        let mut taken_b = false;
        for _ in 0..2000 {
            h.update(0xa000, true);
            h.update_history(true);
            h.update(0xb000, taken_b);
            h.update_history(taken_b);
            taken_b = !taken_b;
        }
        assert!(h.predict(0xa000));
        let rate = h.stats().mispredict_rate();
        assert!(rate < 0.2, "hybrid mispredict rate {rate}");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BimodalPredictor::new(64);
        p.update(0, true); // init weakly-taken: correct
        p.update(0, false); // now strongly taken: incorrect
        assert_eq!(p.stats().predictions(), 2);
        assert_eq!(p.stats().correct, 1);
        assert_eq!(p.stats().incorrect, 1);
        assert_eq!(p.stats().mispredict_rate(), 0.5);
    }

    #[test]
    fn hybrid_counts_lookups_but_not_updates() {
        let mut h = HybridPredictor::new(HybridConfig { entries: 64 });
        assert_eq!(h.lookups(), 0);
        h.predict(0x40);
        h.predict(0x40);
        assert_eq!(h.lookups(), 2);
        // Training alone performs no (counted) lookups.
        h.update(0x40, true);
        assert_eq!(h.lookups(), 2);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = BimodalPredictor::new(1000);
    }
}
