//! Crash-injection tests for the sweep harness, driven by the
//! `CTCP_FAIL_POINT` registry in `ctcp_telemetry::failpoint`.
//!
//! Two faults are injected here:
//!
//! * `job-panic` — a panic inside one job's body, proving the
//!   isolation boundary contains it, retries it, and lets the rest of
//!   the batch (and its store writes) finish;
//! * `store-truncate` — a torn store append, proving the next open
//!   quarantines the damage instead of choking on it.
//!
//! Fail-point state is process-global, so every test serialises on one
//! mutex and disarms on entry and exit.

use ctcp_harness::{failure_table, shard_of, Harness, Job, JobError, JobOutcome, ResultStore};
use ctcp_isa::{Program, ProgramBuilder, Reg};
use ctcp_sim::{SimConfig, Strategy};
use ctcp_telemetry::{failpoint, Counter};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> (MutexGuard<'static, ()>, impl Drop) {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoint::set(None);
        }
    }
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::set(None);
    (guard, Disarm)
}

fn spin_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let top = b.here();
    b.addi(Reg::R1, Reg::R1, 1);
    b.jmp(top);
    Arc::new(b.build())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctcp-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job(workload: &str, strategy: Strategy, program: &Arc<Program>) -> Job {
    let config = SimConfig {
        max_insts: 900,
        strategy,
        ..SimConfig::default()
    };
    Job::new(workload, Arc::clone(program), config)
}

#[test]
fn injected_panic_is_contained_retried_and_reported() {
    let _x = exclusive();
    // Arm the panic for exactly one cell of a 2x2 grid.
    failpoint::set(Some("job-panic=crashy:fdrt"));
    let program = spin_program();
    let jobs = [
        job("steady", Strategy::Baseline, &program),
        job("steady", Strategy::Fdrt { pinning: true }, &program),
        job("crashy", Strategy::Baseline, &program),
        job("crashy", Strategy::Fdrt { pinning: true }, &program),
    ];
    let dir = temp_dir("panic-batch");
    let mut h = Harness::new()
        .jobs(2)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the injected panics
    let outcomes = h.try_run(&jobs);
    std::panic::set_hook(hook);

    // Only the targeted cell failed; its panic was converted to data.
    assert_eq!(outcomes.len(), 4);
    for (i, o) in outcomes.iter().enumerate() {
        if i == 3 {
            continue;
        }
        assert!(o.report().is_some(), "cell {i} must survive the crash");
    }
    let failure = outcomes[3].failure().expect("targeted cell fails");
    assert!(
        matches!(&failure.error, JobError::Panic(msg)
            if msg.contains("fail point job-panic")),
        "{failure:?}"
    );
    assert_eq!(failure.retries, 1, "panics are transient: one retry");
    assert_eq!(
        (failure.workload.as_str(), failure.strategy.as_str()),
        ("crashy", "fdrt")
    );
    assert_eq!(h.telemetry().get(Counter::HarnessJobFailures), 1);
    assert_eq!(h.telemetry().get(Counter::HarnessRetries), 1);
    let table = failure_table(&outcomes).unwrap();
    assert!(table.contains("crashy/fdrt: panic:"), "{table}");

    // The three survivors were memoized despite the crash next door.
    drop(h);
    failpoint::set(None);
    let mut warm = Harness::new()
        .jobs(1)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    let retried = warm.try_run(&jobs);
    assert_eq!(warm.last_batch().store_hits, 3);
    assert!(
        retried.iter().all(|o| matches!(o, JobOutcome::Ok(_))),
        "disarmed, the whole grid completes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_store_write_is_quarantined_on_reopen() {
    let _x = exclusive();
    let program = spin_program();
    let dir = temp_dir("torn-write");
    // A healthy first entry, then a torn append under the fail point.
    {
        let mut h = Harness::new()
            .jobs(1)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        h.try_run(&[job("steady", Strategy::Baseline, &program)]);
    }
    failpoint::set(Some("store-truncate"));
    {
        let mut h = Harness::new()
            .jobs(1)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let outcomes = h.try_run(&[job("steady", Strategy::Fdrt { pinning: true }, &program)]);
        assert!(outcomes[0].report().is_some(), "the job itself succeeded");
    }
    failpoint::set(None);

    // Reopen: the torn line is quarantined, the healthy one survives,
    // and the harness surfaces the quarantine through its telemetry.
    let mut h = Harness::new()
        .jobs(1)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    assert_eq!(h.store_stats().unwrap().quarantined, 1);
    assert_eq!(h.telemetry().get(Counter::StoreQuarantined), 1);
    let outcomes = h.try_run(&[
        job("steady", Strategy::Baseline, &program),
        job("steady", Strategy::Fdrt { pinning: true }, &program),
    ]);
    assert_eq!(h.last_batch().store_hits, 1, "healthy entry still hits");
    assert_eq!(h.last_batch().simulated, 1, "torn entry re-simulates");
    assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::Ok(_))));
    // The torn line was quarantined next to the shard it wounded.
    let torn_key = job("steady", Strategy::Fdrt { pinning: true }, &program).key();
    let quarantine = dir.join(format!("shard-{}.quarantine.jsonl", shard_of(torn_key)));
    assert!(quarantine.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_targeted_truncation_wounds_only_that_shard() {
    let _x = exclusive();
    let program = spin_program();
    let dir = temp_dir("torn-shard");
    let cells = [
        job("steady", Strategy::Baseline, &program),
        job("steady", Strategy::Fdrt { pinning: true }, &program),
        job(
            "steady",
            Strategy::Friendly { middle_bias: false },
            &program,
        ),
    ];
    let keys: Vec<u64> = cells.iter().map(Job::key).collect();
    // Tear writes to the first cell's shard only. The grid is tiny, so
    // the other cells may well share that shard — the assertions below
    // work off the actual shard routing, not off luck.
    let torn_shard = shard_of(keys[0]);
    failpoint::set(Some(&format!("store-truncate={torn_shard}")));
    {
        let mut h = Harness::new()
            .jobs(1)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let outcomes = h.try_run(&cells);
        assert!(outcomes.iter().all(|o| o.report().is_some()));
    }
    failpoint::set(None);

    // Reopen: exactly the entries routed to the torn shard were lost
    // and quarantined; every other shard's entries survived intact.
    let torn: Vec<&u64> = keys
        .iter()
        .filter(|&&k| shard_of(k) == torn_shard)
        .collect();
    let s = ResultStore::open(&dir).unwrap();
    assert_eq!(s.stats().quarantined, torn.len() as u64);
    assert_eq!(s.stats().entries, keys.len() - torn.len());
    for &&k in &torn {
        assert!(s.get(k).is_none(), "torn shard's entry {k:#x} must miss");
    }
    for &k in keys.iter().filter(|&&k| shard_of(k) != torn_shard) {
        assert!(s.get(k).is_some(), "clean shard's entry {k:#x} survives");
    }
    drop(s);
    let quarantine = dir.join(format!("shard-{torn_shard}.quarantine.jsonl"));
    assert!(quarantine.exists(), "evidence lands next to the torn shard");
    std::fs::remove_dir_all(&dir).ok();
}
