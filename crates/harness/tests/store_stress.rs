//! Concurrency tests for the sharded result store.
//!
//! The sharded layout exists so concurrent writers stop serialising on
//! one whole-store lock. These tests drive it the way the sweep
//! service does — many handles on one directory, appending at once —
//! and then hold the store to its durability contract: no torn lines,
//! an index that matches a cold re-scan, and maintenance on one shard
//! that never blocks traffic on another.

use ctcp_harness::{compact, shard_of, verify, ResultStore, STORE_SHARDS};
use ctcp_sim::SimReport;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctcp-stress-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A report whose cycle count encodes `key`, so a later read can check
/// the right payload came back from the right line.
fn marked_report(key: u64) -> SimReport {
    SimReport {
        strategy: "stress".into(),
        cycles: key,
        instructions: 1,
        ipc: 1.0,
        metrics: Default::default(),
        attrib: None,
    }
}

#[test]
fn concurrent_writers_produce_a_clean_consistent_store() {
    const WRITERS: usize = 8;
    const PUTS: u64 = 25;
    let dir = temp_dir("writers");
    // One handle per writer, all on the same directory — the service's
    // shape, and the old single-file store's worst case.
    let handles: Vec<ResultStore> = (0..WRITERS)
        .map(|_| ResultStore::open(&dir).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for (t, store) in handles.into_iter().enumerate() {
            scope.spawn(move || {
                for j in 0..PUTS {
                    let key = (t as u64) << 32 | j;
                    store.put(key, "stress", &marked_report(key)).unwrap();
                }
            });
        }
    });

    // Zero quarantined lines: appends never interleaved mid-line.
    let rep = verify(&dir).unwrap();
    assert_eq!(rep.corrupt, 0, "no torn lines under concurrency");
    assert_eq!(rep.valid, WRITERS * PUTS as usize);
    assert_eq!(rep.entries, WRITERS * PUTS as usize);

    // A cold re-scan builds the same index the writers produced, with
    // every payload on its own key.
    let cold = ResultStore::open(&dir).unwrap();
    assert_eq!(cold.stats().entries, WRITERS * PUTS as usize);
    assert_eq!(cold.stats().quarantined, 0);
    for t in 0..WRITERS as u64 {
        for j in 0..PUTS {
            let key = t << 32 | j;
            let back = cold.get(key).expect("every insert survives");
            assert_eq!(back.cycles, key, "payload matches its key");
        }
    }
    drop(cold);
    for i in 0..STORE_SHARDS {
        assert!(
            !dir.join(format!("shard-{i}.lock")).exists(),
            "no orphaned lock files once every handle is gone"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn maintenance_on_one_shard_never_blocks_another() {
    let dir = temp_dir("shard-isolation");
    // Two keys on different shards: key 0 lives in shard 0, and the
    // scan below finds a partner anywhere else.
    let key_a = 0u64;
    let key_b = (1..64).find(|&k| shard_of(k) != shard_of(key_a)).unwrap();
    let store = ResultStore::open(&dir).unwrap();
    store.put(key_a, "stress", &marked_report(key_a)).unwrap();
    store.put(key_b, "stress", &marked_report(key_b)).unwrap();

    // Wedge shard A's advisory lock, as a stuck writer would.
    let lock_path = dir.join(format!("shard-{}.lock", shard_of(key_a)));
    let held = std::fs::OpenOptions::new()
        .write(true)
        .open(&lock_path)
        .unwrap();
    held.lock().unwrap();

    // compact processes shards in order and must now block on shard A…
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let dir2 = dir.clone();
    let compactor = std::thread::spawn(move || {
        let rep = compact(&dir2).unwrap();
        flag.store(true, Ordering::Release);
        rep
    });
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        !done.load(Ordering::Acquire),
        "compact must wait for shard A's lock, not bypass it"
    );

    // …while shard B stays fully available: lock-free reads and writes
    // on the other shard complete although maintenance is wedged.
    let rep = verify(&dir).unwrap();
    assert_eq!(rep.entries, 2, "read path is never locked out");
    store.put(key_b, "stress", &marked_report(key_b)).unwrap();
    assert!(store.get(key_b).is_some());

    held.unlock().unwrap();
    let rep = compactor.join().unwrap();
    assert!(done.load(Ordering::Acquire));
    // The duplicate put of key_b above collapses to one line.
    assert_eq!((rep.kept, rep.superseded), (2, 1));
    std::fs::remove_dir_all(&dir).ok();
}
