//! Concurrency tests for the shared `ResultStore` handle: many
//! threads probing and appending through clones of one store, with and
//! without the `store-truncate` fail point armed.
//!
//! Fail-point state is process-global, so the test that arms it
//! serialises on a mutex with any future armed test in this binary and
//! disarms on exit (other test binaries are separate processes).

use ctcp_harness::{shard_of, verify, ResultStore, STORE_SHARDS};
use ctcp_isa::{ProgramBuilder, Reg};
use ctcp_sim::{SimConfig, SimReport, Simulation};
use ctcp_telemetry::failpoint;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctcp-storeconc-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A real report (one tiny simulation, run once) with `cycles` abused
/// as a per-key payload so read-backs can check identity.
fn report(cycles: u64) -> SimReport {
    static BASE: OnceLock<SimReport> = OnceLock::new();
    let mut r = BASE
        .get_or_init(|| {
            let mut b = ProgramBuilder::new();
            b.movi(Reg::R1, 1);
            b.halt();
            let p = b.build();
            Simulation::builder(&p)
                .config(SimConfig {
                    max_insts: 10,
                    ..SimConfig::default()
                })
                .build()
                .unwrap()
                .run()
        })
        .clone();
    r.cycles = cycles;
    r
}

const WRITERS: u64 = 4;
const READERS: usize = 4;
const PER_WRITER: u64 = 40;

/// Writer `t`'s `i`-th key. Small keys route as `key % STORE_SHARDS`,
/// so consecutive `i` sweep every shard — writers collide on shards
/// constantly, which is the point.
fn key_of(t: u64, i: u64) -> u64 {
    (t + 1) * 1000 + i
}

#[test]
fn concurrent_probes_and_appends_share_one_handle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::set(None);
    let dir = temp_dir("mixed");
    let store = ResultStore::open(&dir).unwrap();
    // Seed a warm set the readers hammer while writers append.
    for k in 0..STORE_SHARDS as u64 {
        store.put(k, "seed", &report(k)).unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let k = key_of(t, i);
                    store.put(k, "unit", &report(k)).unwrap();
                    // Read-your-writes through the shared index.
                    assert_eq!(store.get(k).unwrap().cycles, k);
                }
            });
        }
        for _ in 0..READERS {
            let store = store.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    for k in 0..STORE_SHARDS as u64 {
                        assert_eq!(store.get(k).unwrap().cycles, k, "warm key must hit");
                    }
                }
            });
        }
    });
    let total = STORE_SHARDS as u64 + WRITERS * PER_WRITER;
    let stats = store.stats();
    assert_eq!(stats.puts, total);
    assert_eq!(stats.entries as u64, total);
    assert_eq!(stats.misses, 0);
    drop(store);

    // Every concurrent append was serialised per shard: the reopened
    // store is complete and byte-clean.
    let reopened = ResultStore::open(&dir).unwrap();
    assert_eq!(reopened.stats().entries as u64, total);
    assert_eq!(reopened.stats().quarantined, 0);
    for t in 0..WRITERS {
        for i in 0..PER_WRITER {
            let k = key_of(t, i);
            assert_eq!(reopened.get(k).unwrap().cycles, k);
        }
    }
    drop(reopened);
    assert_eq!(verify(&dir).unwrap().corrupt, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_shard_under_concurrent_writers_wounds_only_itself() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoint::set(None);
        }
    }
    let _disarm = Disarm;
    let torn_shard = 3usize;
    failpoint::set(Some(&format!("store-truncate={torn_shard}")));
    let dir = temp_dir("torn");
    {
        let store = ResultStore::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for t in 0..WRITERS {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let k = key_of(t, i);
                        store.put(k, "unit", &report(k)).unwrap();
                    }
                });
            }
        });
    }
    failpoint::set(None);

    // Reopen: exactly the keys routed to the torn shard were lost (and
    // their debris quarantined); every key on the other seven shards
    // survived the concurrent traffic intact.
    let reopened = ResultStore::open(&dir).unwrap();
    let mut lost = 0u64;
    for t in 0..WRITERS {
        for i in 0..PER_WRITER {
            let k = key_of(t, i);
            if shard_of(k) == torn_shard {
                assert!(reopened.get(k).is_none(), "torn key {k:#x} must miss");
                lost += 1;
            } else {
                assert_eq!(reopened.get(k).unwrap().cycles, k);
            }
        }
    }
    assert!(lost > 0, "the grid must actually exercise the torn shard");
    // Torn half-lines concatenate (no newline lands), so the exact
    // quarantine count is a function of interleaving — but there must
    // be evidence, and it must sit next to the shard it wounded.
    assert!(reopened.stats().quarantined >= 1);
    drop(reopened);
    assert!(dir
        .join(format!("shard-{torn_shard}.quarantine.jsonl"))
        .exists());
    assert_eq!(verify(&dir).unwrap().corrupt, 0, "store healed on open");
    std::fs::remove_dir_all(&dir).ok();
}
