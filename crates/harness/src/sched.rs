//! Shared cell-level scheduler: one resident worker pool serving the
//! simulation cells of many concurrent requests fairly.
//!
//! The sweep service used to serialise whole batches behind a handler
//! mutex: one long sweep blocked every other client. This module
//! inverts that. A [`CellScheduler`] owns a fixed pool of resident
//! worker threads fed by a *fair* queue of cells: each in-flight
//! request keeps its own FIFO of pending cells, and a round-robin ring
//! over request ids hands workers **one cell per request per turn** —
//! so a 2-cell `analyze` is never starved behind a 96-cell sweep; it
//! waits for at most one cell per request ahead of it in the ring.
//!
//! Results are routed back to the submitting request over a private
//! channel (one per [`RequestHandle`]), so every request collects its
//! own cells — store writes, metrics lines and progress events stay on
//! the submitting thread, exactly as in the private-pool path, and
//! final outputs remain byte-identical to one-shot runs.
//!
//! Workers recycle engine storage across cells the same way the
//! private-pool path does: each worker keeps one owned
//! [`EngineArena`](ctcp_sim::EngineArena) and threads it through a
//! fresh per-cell [`BatchRunner`](ctcp_sim::BatchRunner). (A resident
//! runner cannot outlive a cell here: its memoized warmup checkpoint
//! borrows the cell's program, which the scheduler does not keep
//! alive. Warmup fast-forwards are still captured per cell; only the
//! cross-cell checkpoint sharing of the single-request pool is
//! forgone.)
//!
//! Admission control is a bound on the *queued* (not running) cell
//! count: [`CellScheduler::submit`] atomically rejects a request whose
//! cells would push the queue past the limit, returning [`Saturated`]
//! so the service can answer 503 before streaming anything.
//! Cancellation drops a request's still-queued cells (running cells
//! finish and memoize); [`CellScheduler::shutdown`] stops admissions,
//! lets workers drain every queued cell, and joins them.

use crate::{execute_batched, Job, JobError};
use ctcp_sim::{BatchRunner, EngineArena};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Worker panics tolerated on one cell key before the supervisor
/// quarantines it: further attempts short-circuit to
/// [`JobError::CellPoisoned`] instead of burning another worker. Two
/// means one organic attempt plus one retry — a deterministic
/// crasher trips it within a single default-retry request.
pub(crate) const POISON_PANICS: u32 = 2;

/// One unit of scheduled work: a cell of some request's batch,
/// self-contained (the job is owned) so it can outlive the submitting
/// scope.
pub(crate) struct Cell {
    /// The cell's position in the submitter's job list, echoed back in
    /// [`CellDone::Finished`] so results land in the right slot.
    pub index: usize,
    /// The job to run.
    pub job: Job,
    /// Whether a metrics recorder rides along.
    pub with_metrics: bool,
    /// Whether attribution is collected.
    pub with_attrib: bool,
    /// Transient-failure retry budget.
    pub retries: u32,
}

/// A worker's (or the scheduler's) report back to the submitter.
pub(crate) enum CellDone {
    /// One cell ran to completion (success or typed failure).
    Finished {
        /// `Cell::index` of the finished cell.
        index: usize,
        /// The run's outcome, same shape as the private-pool path.
        /// Boxed: a `SimReport` is large and `Cancelled` is tiny.
        result: Box<Result<(ctcp_sim::SimReport, Option<String>), JobError>>,
        /// Retries actually performed.
        retries: u32,
        /// Wall time of the final attempt, for progress display.
        took: Duration,
        /// Index of the pool worker that ran the cell (`0..workers`),
        /// threaded into progress events so the service can lay
        /// request spans out on per-worker lanes.
        worker: usize,
    },
    /// `count` still-queued cells were dropped by a cancel.
    Cancelled {
        /// How many queued cells were discarded.
        count: usize,
    },
}

/// Admission was refused: the shared queue is at its configured bound.
/// Carries the numbers a 503 body wants to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated {
    /// Cells queued (not yet running) at the moment of rejection.
    pub queued: usize,
    /// Cells the rejected request wanted to add.
    pub wanted: usize,
    /// The configured admission limit.
    pub limit: usize,
}

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduler saturated: {} cells queued + {} requested > limit {}",
            self.queued, self.wanted, self.limit
        )
    }
}

impl std::error::Error for Saturated {}

/// Point-in-time scheduler load, for `/status`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Resident worker threads in the pool.
    pub workers: usize,
    /// Cells queued and not yet picked up by a worker.
    pub queued: usize,
    /// Cells currently executing on a worker.
    pub running: usize,
    /// Queued cells dropped by request cancellation, cumulative.
    pub cancelled: u64,
    /// The admission bound on the queued-cell count (`0` = unbounded).
    pub max_queue: usize,
    /// Fresh-arena worker respawns after panics, cumulative (each
    /// caught panic discards the torn runner state and rebuilds).
    pub respawns: u64,
    /// Cells answered with [`JobError::CellPoisoned`], cumulative.
    pub poisoned: u64,
}

/// One request's slice of the shared queue.
struct RequestQueue {
    cells: VecDeque<Cell>,
    tx: mpsc::Sender<CellDone>,
}

/// Mutex-protected scheduler state: per-request FIFOs plus the
/// round-robin ring that makes the pool fair. Invariant: a request id
/// is in `requests` iff it has at least one queued cell, and then it
/// appears in `ring` exactly once.
struct SchedState {
    requests: HashMap<u64, RequestQueue>,
    ring: VecDeque<u64>,
    next_request: u64,
    shutdown: bool,
}

struct SchedInner {
    state: Mutex<SchedState>,
    work: Condvar,
    workers: usize,
    max_queue: usize,
    queued: AtomicUsize,
    running: AtomicUsize,
    cancelled: AtomicU64,
    respawns: AtomicU64,
    poisoned: AtomicU64,
    /// Cumulative worker panics per cell key — the quarantine ledger.
    panics: Mutex<HashMap<u64, u32>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SchedInner {
    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The key's panic count when it is quarantined, else `None`.
    fn poison_of(&self, key: u64) -> Option<u32> {
        self.panics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .copied()
            .filter(|&c| c >= POISON_PANICS)
    }

    /// Books `n` more panics against `key`, returning the new total.
    fn note_panics(&self, key: u64, n: u32) -> u32 {
        let mut ledger = self.panics.lock().unwrap_or_else(PoisonError::into_inner);
        let count = ledger.entry(key).or_insert(0);
        *count += n;
        *count
    }
}

/// A shared, fair, resident cell scheduler. Cloning the handle is
/// cheap (`Arc` inside); every clone feeds the same pool.
pub struct CellScheduler {
    inner: Arc<SchedInner>,
}

impl Clone for CellScheduler {
    fn clone(&self) -> CellScheduler {
        CellScheduler {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl CellScheduler {
    /// Starts a pool of `workers` resident threads (`0` = auto:
    /// available parallelism). `max_queue` bounds the queued-cell count
    /// for admission control; `0` means unbounded.
    pub fn start(workers: usize, max_queue: usize) -> CellScheduler {
        let workers = if workers > 0 {
            workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                requests: HashMap::new(),
                ring: VecDeque::new(),
                next_request: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            workers,
            max_queue,
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            cancelled: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            panics: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            // Supervised worker: `execute_batched` already catches
            // per-cell panics, so this outer boundary only fires on a
            // scheduler bug — but even then the pool must not shrink,
            // so the supervisor respawns the loop instead of dying.
            handles.push(std::thread::spawn(move || loop {
                match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(&inner, w))) {
                    Ok(()) => return,
                    Err(_) => {
                        inner.respawns.fetch_add(1, Ordering::Relaxed);
                        ctcp_telemetry::log::warn(
                            "sched",
                            "worker loop panicked; respawning",
                            &[("worker", ctcp_telemetry::json::Value::u64(w as u64))],
                        );
                    }
                }
            }));
        }
        *inner.handles.lock().unwrap_or_else(PoisonError::into_inner) = handles;
        CellScheduler { inner }
    }

    /// Atomically admits one request's cells (all or nothing). With an
    /// admission limit configured, a request whose cells would push the
    /// queued count past it is rejected with [`Saturated`] — nothing is
    /// enqueued. A scheduler that is shutting down rejects everything
    /// (reported as saturated with the current queue numbers).
    pub(crate) fn submit(&self, cells: Vec<Cell>) -> Result<RequestHandle, Saturated> {
        let wanted = cells.len();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.lock();
            let queued = self.inner.queued.load(Ordering::Relaxed);
            let limit = self.inner.max_queue;
            if st.shutdown || (limit > 0 && queued + wanted > limit) {
                return Err(Saturated {
                    queued,
                    wanted,
                    limit,
                });
            }
            let id = st.next_request;
            st.next_request += 1;
            // An empty batch is admissible but never enters the ring —
            // the map/ring invariant requires at least one queued cell.
            if wanted > 0 {
                self.inner.queued.fetch_add(wanted, Ordering::Relaxed);
                st.requests.insert(
                    id,
                    RequestQueue {
                        cells: cells.into(),
                        tx,
                    },
                );
                st.ring.push_back(id);
                self.inner.work.notify_all();
            }
            Ok(RequestHandle {
                sched: self.clone(),
                id,
                rx,
            })
        }
    }

    /// Drops request `id`'s still-queued cells (running cells finish
    /// normally) and tells the submitter how many were discarded via a
    /// [`CellDone::Cancelled`] message. A request with nothing queued
    /// is a no-op.
    fn cancel(&self, id: u64) {
        let mut st = self.inner.lock();
        let Some(rq) = st.requests.remove(&id) else {
            return;
        };
        st.ring.retain(|&r| r != id);
        let count = rq.cells.len();
        self.inner.queued.fetch_sub(count, Ordering::Relaxed);
        self.inner
            .cancelled
            .fetch_add(count as u64, Ordering::Relaxed);
        let _ = rq.tx.send(CellDone::Cancelled { count });
    }

    /// Current load numbers.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            workers: self.inner.workers,
            queued: self.inner.queued.load(Ordering::Relaxed),
            running: self.inner.running.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            max_queue: self.inner.max_queue,
            respawns: self.inner.respawns.load(Ordering::Relaxed),
            poisoned: self.inner.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stops admitting new requests, lets the pool run
    /// every already-queued cell to completion, and joins the worker
    /// threads. Safe to call more than once; later calls are no-ops.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.lock();
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles = std::mem::take(
            &mut *self
                .inner
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A submitted request's end of the scheduler: the channel its results
/// arrive on, plus the id needed to cancel its queued remainder.
pub(crate) struct RequestHandle {
    sched: CellScheduler,
    id: u64,
    rx: mpsc::Receiver<CellDone>,
}

impl RequestHandle {
    /// Blocks for the next finished (or cancelled) cell. `None` once
    /// every worker-side sender is gone — which cannot happen before
    /// the request's cells are all accounted for, so a `None` here
    /// means the pool died.
    pub fn recv(&self) -> Option<CellDone> {
        self.rx.recv().ok()
    }

    /// Cancels this request's still-queued cells.
    pub fn cancel(&self) {
        self.sched.cancel(self.id);
    }
}

/// The resident worker body: pull one cell from the fair queue, run it
/// with recycled engine storage, route the result home, repeat until
/// shutdown *and* the queue is dry.
fn worker_loop(inner: &SchedInner, worker: usize) {
    let mut arena: Option<EngineArena> = None;
    loop {
        let picked = {
            let mut st = inner.lock();
            loop {
                if let Some(id) = st.ring.pop_front() {
                    let rq = st.requests.get_mut(&id).expect("ring entry has a queue");
                    let cell = rq.cells.pop_front().expect("queued request has cells");
                    let tx = rq.tx.clone();
                    if rq.cells.is_empty() {
                        st.requests.remove(&id);
                    } else {
                        st.ring.push_back(id);
                    }
                    break Some((cell, tx));
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((cell, tx)) = picked else {
            return;
        };
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        // Quarantine check: a key that already burned its panic budget
        // is refused without touching a runner — poison is the typed
        // outcome, the rest of the request proceeds.
        let key = cell.job.key();
        if let Some(panics) = inner.poison_of(key) {
            inner.poisoned.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(CellDone::Finished {
                index: cell.index,
                result: Box::new(Err(JobError::CellPoisoned { panics })),
                retries: 0,
                took: Duration::ZERO,
                worker,
            });
            continue;
        }
        inner.running.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        // Per-cell runner, worker-resident arena: allocation recycling
        // survives across cells even though the runner itself cannot.
        let mut runner = match arena.take() {
            Some(a) => BatchRunner::with_arena(a),
            None => BatchRunner::new(),
        };
        let (mut result, retries) = execute_batched(
            &mut runner,
            &cell.job,
            cell.with_metrics,
            cell.with_attrib,
            cell.retries,
        );
        arena = runner.take_arena();
        inner.running.fetch_sub(1, Ordering::Relaxed);
        // Supervision bookkeeping. In the batched path panics are the
        // only transient failure, so `retries` counts retried panics;
        // each one tore the runner down and rebuilt it with a fresh
        // arena — that rebuild is the "respawn" the counter reports.
        let panics = retries + u32::from(matches!(result, Err(JobError::Panic(_))));
        if panics > 0 {
            inner
                .respawns
                .fetch_add(u64::from(panics), Ordering::Relaxed);
            let total = inner.note_panics(key, panics);
            if total >= POISON_PANICS && matches!(result, Err(JobError::Panic(_))) {
                inner.poisoned.fetch_add(1, Ordering::Relaxed);
                result = Err(JobError::CellPoisoned { panics: total });
                ctcp_telemetry::log::warn(
                    "sched",
                    "cell quarantined after repeated panics",
                    &[
                        (
                            "key",
                            ctcp_telemetry::json::Value::str(&format!("{key:016x}")),
                        ),
                        (
                            "workload",
                            ctcp_telemetry::json::Value::str(&cell.job.workload),
                        ),
                        ("panics", ctcp_telemetry::json::Value::u64(u64::from(total))),
                        ("worker", ctcp_telemetry::json::Value::u64(worker as u64)),
                    ],
                );
            }
        }
        let _ = tx.send(CellDone::Finished {
            index: cell.index,
            result: Box::new(result),
            retries,
            took: t.elapsed(),
            worker,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_program;
    use ctcp_sim::SimConfig;

    fn cell(index: usize, budget: u64) -> Cell {
        let config = SimConfig {
            max_insts: budget,
            ..SimConfig::default()
        };
        Cell {
            index,
            job: Job::new("spin", tiny_program(), config),
            with_metrics: false,
            with_attrib: false,
            retries: 0,
        }
    }

    fn drain(handle: &RequestHandle, expect: usize) -> (usize, usize) {
        let (mut finished, mut cancelled) = (0, 0);
        while finished + cancelled < expect {
            match handle.recv().expect("pool alive") {
                CellDone::Finished { result, .. } => {
                    assert!(result.is_ok());
                    finished += 1;
                }
                CellDone::Cancelled { count } => cancelled += count,
            }
        }
        (finished, cancelled)
    }

    #[test]
    fn concurrent_requests_all_complete() {
        let sched = CellScheduler::start(2, 0);
        let handles: Vec<RequestHandle> = (0..3)
            .map(|_| {
                sched
                    .submit((0..4).map(|i| cell(i, 500 + i as u64)).collect())
                    .expect("unbounded queue admits")
            })
            .collect();
        for h in &handles {
            assert_eq!(drain(h, 4), (4, 0));
        }
        let stats = sched.stats();
        assert_eq!((stats.queued, stats.running), (0, 0));
        sched.shutdown();
    }

    #[test]
    fn admission_limit_rejects_oversized_requests_atomically() {
        // One worker, and a first request large enough that cells are
        // still queued when the second arrives.
        let sched = CellScheduler::start(1, 4);
        let first = sched
            .submit((0..4).map(|i| cell(i, 50_000)).collect())
            .expect("fits the bound exactly");
        let refused = sched.submit(vec![cell(0, 500), cell(1, 500)]);
        match refused {
            Err(sat) => {
                assert_eq!(sat.limit, 4);
                assert_eq!(sat.wanted, 2);
                assert!(sat.queued + sat.wanted > sat.limit, "{sat}");
            }
            Ok(_) => panic!("second request must be refused while queue is full"),
        }
        assert_eq!(drain(&first, 4), (4, 0));
        // Queue drained: the same request is now admissible.
        let retry = sched
            .submit(vec![cell(0, 500), cell(1, 500)])
            .expect("drained queue admits");
        assert_eq!(drain(&retry, 2), (2, 0));
        sched.shutdown();
    }

    #[test]
    fn cancel_drops_only_queued_cells() {
        let sched = CellScheduler::start(1, 0);
        // Park a long request so the victim's cells stay queued.
        let long = sched
            .submit((0..2).map(|i| cell(i, 80_000)).collect())
            .unwrap();
        let victim = sched
            .submit((0..5).map(|i| cell(i, 500)).collect())
            .unwrap();
        victim.cancel();
        let (finished, cancelled) = drain(&victim, 5);
        // Depending on interleaving a cell or two may already have run,
        // but cancelled + finished always accounts for all five, and at
        // least one must have been dropped while the long request held
        // the single worker.
        assert_eq!(finished + cancelled, 5);
        assert!(cancelled >= 1, "queued cells must be droppable");
        assert_eq!(sched.stats().cancelled, cancelled as u64);
        assert_eq!(drain(&long, 2), (2, 0));
        assert_eq!(sched.stats().queued, 0);
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_cells_then_refuses() {
        let sched = CellScheduler::start(1, 0);
        let h = sched
            .submit((0..6).map(|i| cell(i, 2_000)).collect())
            .unwrap();
        sched.shutdown();
        // Every queued cell still completed — drain means no lost work.
        assert_eq!(drain(&h, 6), (6, 0));
        assert!(sched.submit(vec![cell(0, 500)]).is_err());
    }

    #[test]
    fn repeated_panics_poison_only_the_offending_cell() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        ctcp_telemetry::failpoint::set(Some("job-panic=crasher"));
        let sched = CellScheduler::start(1, 0);
        let crasher = || Cell {
            index: 2,
            job: Job::new(
                "crasher",
                tiny_program(),
                SimConfig {
                    max_insts: 500,
                    ..SimConfig::default()
                },
            ),
            with_metrics: false,
            with_attrib: false,
            retries: 1, // two panics total: exactly the poison budget
        };
        let h = sched
            .submit(vec![cell(0, 500), cell(1, 500), crasher()])
            .unwrap();
        let (mut ok, mut poisoned) = (0, 0);
        for _ in 0..3 {
            match h.recv().expect("pool alive") {
                CellDone::Finished { index, result, .. } => match *result {
                    Ok(_) => ok += 1,
                    Err(JobError::CellPoisoned { panics }) => {
                        assert_eq!(index, 2, "poison must hit the crasher only");
                        assert!(panics >= POISON_PANICS);
                        poisoned += 1;
                    }
                    Err(e) => panic!("unexpected outcome: {e}"),
                },
                CellDone::Cancelled { .. } => panic!("nothing was cancelled"),
            }
        }
        assert_eq!((ok, poisoned), (2, 1));
        let stats = sched.stats();
        assert!(stats.respawns >= 2, "each caught panic respawns the arena");
        assert_eq!(stats.poisoned, 1);
        // The quarantined key now short-circuits without running.
        let h2 = sched.submit(vec![crasher()]).unwrap();
        match h2.recv().expect("pool alive") {
            CellDone::Finished { result, .. } => {
                assert!(matches!(*result, Err(JobError::CellPoisoned { .. })));
            }
            CellDone::Cancelled { .. } => panic!("nothing was cancelled"),
        }
        assert_eq!(sched.stats().poisoned, 2);
        ctcp_telemetry::failpoint::set(None);
        sched.shutdown();
    }

    #[test]
    fn round_robin_interleaves_a_small_request_past_a_big_one() {
        // One worker, a 12-cell request submitted first, then a 2-cell
        // request. Fair interleaving must finish the small request
        // after at most a handful of big-request cells — strictly FIFO
        // scheduling would run all 12 first.
        let sched = CellScheduler::start(1, 0);
        let big = sched
            .submit((0..12).map(|i| cell(i, 20_000)).collect())
            .unwrap();
        let small = sched.submit(vec![cell(0, 1_000), cell(1, 1_000)]).unwrap();
        let mut big_done = 0usize;
        let mut small_done = 0usize;
        // Poll both receivers without blocking on the big one.
        while small_done < 2 {
            if let Ok(CellDone::Finished { .. }) = small.rx.try_recv() {
                small_done += 1;
            }
            if let Ok(CellDone::Finished { .. }) = big.rx.try_recv() {
                big_done += 1;
            }
            std::thread::yield_now();
        }
        assert!(
            big_done < 12,
            "small request must complete before the big one drains"
        );
        assert_eq!(drain(&big, 12 - big_done), (12 - big_done, 0));
        sched.shutdown();
    }
}
