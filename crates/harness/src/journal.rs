//! Durable request journal: the write-ahead log that makes `ctcp
//! serve` crash-safe.
//!
//! The journal is one append-only JSON-lines file, `journal.jsonl`,
//! living next to the result-store shards. It records the lifecycle of
//! every admitted service request:
//!
//! ```text
//! {"v":1,"t":"admit","req":"<token>","kind":"sweep","body":"{...}","crc":"<8 hex>"}
//! {"v":1,"t":"cell","req":"<token>","key":"<16 hex>","crc":"<8 hex>"}
//! {"v":1,"t":"done","req":"<token>","exit":0,"crc":"<8 hex>"}
//! ```
//!
//! `admit` carries the request's full wire body, so a restarted daemon
//! can re-enqueue it verbatim; `cell` marks one cell's report as
//! memoized into the result store; `done` is the terminal state. Every
//! line reuses the store's CRC-32 envelope machinery ([`crc32`] over
//! the bytes before the trailing `crc` field), so a torn tail from a
//! `kill -9` mid-append is detected and skipped on replay — the
//! journal tolerates exactly the crashes it exists to survive.
//!
//! ## Replay and compaction
//!
//! [`Journal::open`] replays the file tolerantly (corrupt or torn
//! lines are counted and skipped, never fatal), then compacts it in
//! place: records of requests that reached `done` are pruned by an
//! atomic rewrite, so the journal only ever holds in-flight work. A
//! size threshold triggers the same compaction at runtime after a
//! [`Journal::finish`], bounding the file under sustained traffic.
//! The surviving non-terminal requests come back from
//! [`Journal::take_pending`]; the daemon re-enqueues them, and cells
//! already memoized in the result store come back as store hits — so
//! a crash mid-96-cell-sweep resumes with zero recomputation of
//! finished cells.
//!
//! The `journal-truncate` fail point tears one append in half (then
//! disarms itself), simulating a crash mid-write for tests.

use crate::store::{atomic_rewrite, crc32, split_crc};
use ctcp_sim::json::Value;
use ctcp_telemetry::failpoint;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Journal record format version, independent of the store's.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// The journal file name inside the store directory.
const JOURNAL_FILE: &str = "journal.jsonl";

/// Runtime compaction threshold: when a terminal record pushes the
/// file past this size, it is rewritten down to live records only.
const DEFAULT_COMPACT_BYTES: u64 = 1 << 20;

/// One request the journal says was admitted but never finished — the
/// restart work list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The request's resume token (idempotency key of the wire body).
    pub token: String,
    /// Request kind, `"sweep"` or `"analyze"`.
    pub kind: String,
    /// The verbatim wire body, ready to re-enqueue.
    pub body: String,
    /// Cells the journal marked as memoized before the crash.
    pub cells_done: usize,
}

/// In-memory mirror of one live (admitted, not yet done) request.
struct ReqState {
    token: String,
    kind: String,
    body: String,
    cells: Vec<u64>,
}

struct JournalState {
    file: File,
    /// Live requests in admission order (few at a time; linear scans
    /// are cheaper than keeping a map in sync with the order).
    live: Vec<ReqState>,
    /// Requests found pending at open, handed out once via
    /// [`Journal::take_pending`].
    pending: Vec<PendingRequest>,
    /// Approximate current file size, maintained across appends.
    bytes: u64,
    /// Unreadable (torn or corrupt) lines skipped during replay.
    skipped: u64,
    /// Compactions performed (open-time and runtime), cumulative —
    /// surfaced as an operator gauge via `/metrics`.
    compactions: u64,
}

/// A crash-safe request journal. Cloning the handle is cheap (`Arc`
/// inside); all clones append to one file under one lock.
pub struct Journal {
    path: PathBuf,
    compact_bytes: u64,
    state: Arc<Mutex<JournalState>>,
}

impl Clone for Journal {
    fn clone(&self) -> Journal {
        Journal {
            path: self.path.clone(),
            compact_bytes: self.compact_bytes,
            state: Arc::clone(&self.state),
        }
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in store directory `dir`,
    /// replays it tolerantly, and compacts terminal records away.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors — torn or corrupt lines are
    /// skipped, not fatal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Journal> {
        Journal::open_with(dir, DEFAULT_COMPACT_BYTES)
    }

    /// [`Journal::open`] with an explicit runtime compaction threshold
    /// in bytes (tests use a tiny one to force compaction).
    pub fn open_with(dir: impl AsRef<Path>, compact_bytes: u64) -> std::io::Result<Journal> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut live: Vec<ReqState> = Vec::new();
        let mut skipped = 0u64;
        if let Ok(existing) = File::open(&path) {
            for line in BufReader::new(existing).lines() {
                match Record::decode(&line?) {
                    Some(Record::Admit { token, kind, body }) => {
                        if !live.iter().any(|r| r.token == token) {
                            live.push(ReqState {
                                token,
                                kind,
                                body,
                                cells: Vec::new(),
                            });
                        }
                    }
                    Some(Record::Cell { token, key }) => {
                        // A mark for an unknown token (its admit line
                        // was torn) has nothing to attach to: skip it.
                        if let Some(r) = live.iter_mut().find(|r| r.token == token) {
                            if !r.cells.contains(&key) {
                                r.cells.push(key);
                            }
                        }
                    }
                    Some(Record::Done { token, .. }) => live.retain(|r| r.token != token),
                    Some(Record::Blank) => {}
                    None => skipped += 1,
                }
            }
        }
        // Compact on open: only live records survive the restart.
        let lines: Vec<String> = live.iter().flat_map(ReqState::encode).collect();
        atomic_rewrite(&path, &lines)?;
        let bytes = lines.iter().map(|l| l.len() as u64 + 1).sum();
        let pending = live
            .iter()
            .map(|r| PendingRequest {
                token: r.token.clone(),
                kind: r.kind.clone(),
                body: r.body.clone(),
                cells_done: r.cells.len(),
            })
            .collect();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            compact_bytes,
            state: Arc::new(Mutex::new(JournalState {
                file,
                live,
                pending,
                bytes,
                skipped,
                compactions: 1, // the open-time compaction above
            })),
        })
    }

    /// The journal file path (for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The requests found admitted-but-unfinished at open time, in
    /// admission order. Draining: later calls return an empty list.
    pub fn take_pending(&self) -> Vec<PendingRequest> {
        std::mem::take(&mut self.lock().pending)
    }

    /// Unreadable lines skipped during the open-time replay.
    pub fn skipped_lines(&self) -> u64 {
        self.lock().skipped
    }

    /// Journals the admission of request `token` with its verbatim
    /// wire `body`. Idempotent: re-admitting a token the journal
    /// already holds live (a client re-attaching) writes nothing.
    ///
    /// # Errors
    ///
    /// Propagates append failures; the in-memory record is kept either
    /// way, so runtime compaction still writes it back.
    pub fn admit(&self, token: &str, kind: &str, body: &str) -> std::io::Result<()> {
        let mut st = self.lock();
        if st.live.iter().any(|r| r.token == token) {
            return Ok(());
        }
        let r = ReqState {
            token: token.to_string(),
            kind: kind.to_string(),
            body: body.to_string(),
            cells: Vec::new(),
        };
        let line = r.encode_admit();
        st.live.push(r);
        append(&mut st, &line)
    }

    /// Journals one cell of request `token` as memoized into the
    /// result store (duplicate marks write nothing).
    ///
    /// # Errors
    ///
    /// Propagates append failures.
    pub fn mark_cell(&self, token: &str, key: u64) -> std::io::Result<()> {
        let mut st = self.lock();
        let Some(r) = st.live.iter_mut().find(|r| r.token == token) else {
            return Ok(());
        };
        if r.cells.contains(&key) {
            return Ok(());
        }
        r.cells.push(key);
        let line = encode_cell(token, key);
        append(&mut st, &line)
    }

    /// Journals request `token` as terminal with `exit` code, then
    /// compacts the file if it outgrew the size threshold.
    ///
    /// # Errors
    ///
    /// Propagates append or rewrite failures.
    pub fn finish(&self, token: &str, exit: i32) -> std::io::Result<()> {
        let mut st = self.lock();
        if !st.live.iter().any(|r| r.token == token) {
            return Ok(());
        }
        st.live.retain(|r| r.token != token);
        let line = encode_done(token, exit);
        append(&mut st, &line)?;
        if st.bytes > self.compact_bytes {
            let lines: Vec<String> = st.live.iter().flat_map(ReqState::encode).collect();
            atomic_rewrite(&self.path, &lines)?;
            st.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            st.bytes = lines.iter().map(|l| l.len() as u64 + 1).sum();
            st.compactions += 1;
        }
        Ok(())
    }

    /// Approximate journal file size in bytes (maintained across
    /// appends and compactions, no stat call).
    pub fn size_bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Compactions performed over this handle's lifetime, counting the
    /// open-time rewrite.
    pub fn compactions(&self) -> u64 {
        self.lock().compactions
    }

    /// Requests currently live (admitted, not yet finished).
    pub fn live_requests(&self) -> usize {
        self.lock().live.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Appends one sealed record line. The `journal-truncate` fail point
/// (one-shot) tears the write in half — the bytes of a crash that
/// landed mid-append — and reports success, exactly like a real crash
/// would look to the (now dead) writer.
fn append(st: &mut JournalState, line: &str) -> std::io::Result<()> {
    let mut full = line.to_string();
    full.push('\n');
    if failpoint::take("journal-truncate").is_some() {
        st.file.write_all(&full.as_bytes()[..full.len() / 2])?;
        st.bytes += full.len() as u64 / 2;
        return st.file.flush();
    }
    st.file.write_all(full.as_bytes())?;
    st.bytes += full.len() as u64;
    st.file.flush()
}

/// Seals a rendered JSON object with the store's trailing-CRC field.
fn seal(mut body: String) -> String {
    assert_eq!(body.pop(), Some('}'));
    let crc = crc32(body.as_bytes());
    body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
    body
}

fn encode_cell(token: &str, key: u64) -> String {
    seal(
        Value::Obj(vec![
            ("v".into(), Value::u64(u64::from(JOURNAL_FORMAT_VERSION))),
            ("t".into(), Value::str("cell")),
            ("req".into(), Value::str(token)),
            ("key".into(), Value::str(&format!("{key:016x}"))),
        ])
        .render(),
    )
}

fn encode_done(token: &str, exit: i32) -> String {
    seal(
        Value::Obj(vec![
            ("v".into(), Value::u64(u64::from(JOURNAL_FORMAT_VERSION))),
            ("t".into(), Value::str("done")),
            ("req".into(), Value::str(token)),
            ("exit".into(), Value::u64(exit.unsigned_abs().into())),
        ])
        .render(),
    )
}

impl ReqState {
    fn encode_admit(&self) -> String {
        seal(
            Value::Obj(vec![
                ("v".into(), Value::u64(u64::from(JOURNAL_FORMAT_VERSION))),
                ("t".into(), Value::str("admit")),
                ("req".into(), Value::str(&self.token)),
                ("kind".into(), Value::str(&self.kind)),
                ("body".into(), Value::str(&self.body)),
            ])
            .render(),
        )
    }

    /// Every line this request contributes to a compacted file.
    fn encode(&self) -> Vec<String> {
        let mut lines = vec![self.encode_admit()];
        lines.extend(self.cells.iter().map(|&k| encode_cell(&self.token, k)));
        lines
    }
}

/// One decoded journal line.
enum Record {
    Admit {
        token: String,
        kind: String,
        body: String,
    },
    Cell {
        token: String,
        key: u64,
    },
    Done {
        token: String,
        #[allow(dead_code)] // recorded for operators; replay only needs terminality
        exit: u64,
    },
    Blank,
}

impl Record {
    /// `None` = torn, bit-rotted or malformed: skipped by replay.
    fn decode(line: &str) -> Option<Record> {
        if line.trim().is_empty() {
            return Some(Record::Blank);
        }
        let v = Value::parse(line).ok()?;
        if v.get("v").and_then(Value::as_u64) != Some(u64::from(JOURNAL_FORMAT_VERSION)) {
            return None;
        }
        let (covered, stored) = split_crc(line)?;
        if crc32(covered.as_bytes()) != stored {
            return None;
        }
        let token = v.get("req")?.as_str()?.to_string();
        match v.get("t")?.as_str()? {
            "admit" => Some(Record::Admit {
                token,
                kind: v.get("kind")?.as_str()?.to_string(),
                body: v.get("body")?.as_str()?.to_string(),
            }),
            "cell" => {
                let hex = v.get("key")?.as_str()?;
                if hex.len() != 16 {
                    return None;
                }
                Some(Record::Cell {
                    token,
                    key: u64::from_str_radix(hex, 16).ok()?,
                })
            }
            "done" => Some(Record::Done {
                token,
                exit: v.get("exit")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{temp_dir, FAILPOINT_LOCK};

    #[test]
    fn admit_cell_finish_round_trips_to_empty_pending() {
        let dir = temp_dir("journal-roundtrip");
        {
            let j = Journal::open(&dir).unwrap();
            assert!(j.take_pending().is_empty());
            j.admit("tok1", "sweep", "{\"benches\":[\"gzip\"]}")
                .unwrap();
            j.mark_cell("tok1", 0xabcd).unwrap();
            j.mark_cell("tok1", 0xabcd).unwrap(); // duplicate: no-op
            j.finish("tok1", 0).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert!(j.take_pending().is_empty(), "terminal request pruned");
        assert_eq!(j.skipped_lines(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unfinished_request_survives_restart_with_its_cell_marks() {
        let dir = temp_dir("journal-pending");
        {
            let j = Journal::open(&dir).unwrap();
            j.admit("tok1", "sweep", "{\"b\":1}").unwrap();
            j.admit("tok2", "analyze", "{\"b\":2}").unwrap();
            j.mark_cell("tok1", 1).unwrap();
            j.mark_cell("tok1", 2).unwrap();
            j.finish("tok2", 0).unwrap();
            // tok1 never finishes: the daemon "crashes" here.
        }
        let j = Journal::open(&dir).unwrap();
        let pending = j.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].token, "tok1");
        assert_eq!(pending[0].kind, "sweep");
        assert_eq!(pending[0].body, "{\"b\":1}");
        assert_eq!(pending[0].cells_done, 2);
        assert!(j.take_pending().is_empty(), "pending drains once");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = temp_dir("journal-torn");
        let path = {
            let j = Journal::open(&dir).unwrap();
            j.admit("tok1", "sweep", "{}").unwrap();
            j.path().to_path_buf()
        };
        // A kill -9 mid-append: half an admit record, no newline.
        let torn = {
            let full = ReqState {
                token: "tok2".into(),
                kind: "sweep".into(),
                body: "{}".into(),
                cells: Vec::new(),
            }
            .encode_admit();
            full[..full.len() / 2].to_string()
        };
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&torn);
        std::fs::write(&path, &text).unwrap();

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.skipped_lines(), 1);
        let pending = j.take_pending();
        assert_eq!(pending.len(), 1, "intact record survives the torn one");
        assert_eq!(pending[0].token, "tok1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_compacts_terminal_records_away() {
        let dir = temp_dir("journal-compact-open");
        {
            let j = Journal::open(&dir).unwrap();
            for i in 0..10 {
                let tok = format!("tok{i}");
                j.admit(&tok, "sweep", "{}").unwrap();
                j.mark_cell(&tok, i).unwrap();
                j.finish(&tok, 0).unwrap();
            }
            j.admit("live", "sweep", "{}").unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        let text = std::fs::read_to_string(j.path()).unwrap();
        assert_eq!(text.lines().count(), 1, "only the live admit survives");
        assert!(text.contains("\"live\""));
        assert_eq!(j.take_pending().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_threshold_compacts_at_runtime() {
        let dir = temp_dir("journal-compact-size");
        // A threshold small enough that a couple of finished requests
        // trip it; the file must never grow without bound.
        let j = Journal::open_with(&dir, 256).unwrap();
        for i in 0..50 {
            let tok = format!("tok{i}");
            j.admit(&tok, "sweep", "{\"pad\":\"xxxxxxxxxxxxxxxx\"}")
                .unwrap();
            j.finish(&tok, 0).unwrap();
        }
        j.admit("live", "sweep", "{}").unwrap();
        let size = std::fs::metadata(j.path()).unwrap().len();
        assert!(size < 1024, "compaction must bound the file, got {size}");
        // The operator gauges track what the file system shows.
        assert!(j.compactions() > 1, "runtime compactions counted");
        assert_eq!(j.size_bytes(), size);
        assert_eq!(j.live_requests(), 1);
        drop(j);
        // Replay after runtime compaction still resumes correctly.
        let j = Journal::open(&dir).unwrap();
        let pending = j.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].token, "live");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_truncate_fail_point_tears_one_append() {
        let _g = FAILPOINT_LOCK.lock().unwrap();
        let dir = temp_dir("journal-failpoint");
        {
            let j = Journal::open(&dir).unwrap();
            j.admit("tok1", "sweep", "{}").unwrap();
            failpoint::set(Some("journal-truncate"));
            // This mark is torn mid-write (and the point disarms).
            j.mark_cell("tok1", 7).unwrap();
            failpoint::set(None);
            j.mark_cell("tok1", 8).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        let pending = j.take_pending();
        assert_eq!(pending.len(), 1);
        // The torn mark is lost; the garbled line (torn bytes + next
        // record) is skipped, so at most the intact admit survives —
        // losing marks is safe (the store still answers those cells).
        assert!(pending[0].cells_done <= 1);
        assert!(j.skipped_lines() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admit_is_idempotent_for_a_live_token() {
        let dir = temp_dir("journal-idem");
        let j = Journal::open(&dir).unwrap();
        j.admit("tok1", "sweep", "{}").unwrap();
        j.admit("tok1", "sweep", "{}").unwrap();
        let text = std::fs::read_to_string(j.path()).unwrap();
        assert_eq!(text.lines().count(), 1, "re-admit writes nothing");
        std::fs::remove_dir_all(&dir).ok();
    }
}
