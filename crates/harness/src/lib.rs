//! # ctcp-harness — parallel sweep runner for the CTCP simulator
//!
//! Experiments in this workspace are grids: benchmarks × strategies ×
//! configurations, where every cell is an independent, deterministic
//! simulation. This crate owns the execution of those grids so the
//! experiment code only *describes* cells and *renders* tables.
//!
//! ## Job model
//!
//! A [`Job`] is one cell: a workload name, a shared [`Program`], and a
//! complete [`SimConfig`] (which carries the strategy and the
//! instruction budget). [`Harness::run`] executes a batch of jobs and
//! returns one [`SimReport`] per job **in job order**, regardless of
//! how many worker threads ran them — reports are collected into slots
//! indexed by job position, so downstream table rendering is
//! byte-identical at any parallelism, and `--jobs 1` degenerates to a
//! plain in-order loop on the calling thread.
//!
//! ## Memoization
//!
//! With a [`ResultStore`] attached, each job's content key
//! ([`job_key`]: FNV-1a 64 over a format-version salt, the workload
//! name, and the full `Debug` rendering of the config) is looked up
//! before simulating; hits skip the simulator entirely, and fresh
//! results are appended to the store's JSON-lines file as they
//! complete. Duplicate keys *within* a batch are also coalesced: the
//! cell is simulated once and the report is copied to every position
//! that asked for it.
//!
//! ## Batched execution
//!
//! Workers are resident [`BatchRunner`]s: consecutive cells executed by
//! one worker recycle a single engine arena and share fast-forward
//! warmup checkpoints keyed by `(program, warmup_instructions)`, so a
//! sweep pays for allocation and warmup once per worker rather than
//! once per cell. Reports are byte-identical to the historical
//! one-simulation-per-job path, which `CTCP_BATCH=off` restores for A/B
//! timing; a configured [`Harness::job_timeout`] also falls back to it,
//! because timed attempts run on detached threads.
//!
//! ## Fault tolerance
//!
//! Every job runs behind an isolation boundary: a panic (simulator
//! bug), a typed simulation abort (watchdog trip, cycle budget), an
//! invalid configuration, or an optional wall-clock timeout fails
//! *that job* — never the worker, never the batch. [`Harness::try_run`]
//! returns one [`JobOutcome`] per job; transient failures (panics,
//! timeouts) are retried with linear backoff ([`Harness::retries`]).
//! The infallible [`Harness::run`] keeps its historical signature by
//! panicking with the rendered [`failure_table`] — but only after the
//! whole batch has run and every successful cell is in the store.
//!
//! ## Progress
//!
//! When stderr is a terminal (or when forced on), a single rewriting
//! status line shows completed/total, jobs/sec, the wall time of the
//! last finished job, and an ETA. Tables on stdout are never touched.
//!
//! ## Example
//!
//! ```
//! use ctcp_harness::{Harness, Job};
//! use ctcp_isa::{ProgramBuilder, Reg};
//! use ctcp_sim::SimConfig;
//! use std::sync::Arc;
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.here();
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.jmp(top);
//! let program = Arc::new(b.build());
//!
//! let mut config = SimConfig::default();
//! config.max_insts = 2_000;
//! let jobs: Vec<Job> = (0..4)
//!     .map(|_| Job::new("spin", Arc::clone(&program), config))
//!     .collect();
//!
//! let mut harness = Harness::new().jobs(2).progress(false);
//! let reports = harness.run(&jobs);
//! assert_eq!(reports.len(), 4);
//! // All four cells share one key, so only one was simulated.
//! assert_eq!(harness.last_batch().simulated, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod journal;
mod progress;
mod sched;
mod spec;
mod store;

pub use journal::{Journal, PendingRequest, JOURNAL_FORMAT_VERSION};
pub use progress::{NullProgress, ProgressSink, StderrProgress};
pub use sched::{CellScheduler, Saturated, SchedStats};
pub use spec::{SpecError, SweepCell, SweepPlan, SweepSpec};
pub use store::{
    compact, crc32, gc, job_key, shard_of, verify, CompactReport, GcReport, ResultStore,
    StoreStats, VerifyReport, STORE_FORMAT_VERSION, STORE_SHARDS,
};

use ctcp_isa::Program;
use ctcp_sim::{BatchError, BatchRunner, SimBuilder, SimConfig, SimError, SimReport, Simulation};
use ctcp_telemetry::{failpoint, metrics_line, Counter, Metrics, Recorder, RecorderConfig};
use std::collections::HashMap;
use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Transient failures (panics, timeouts) are re-attempted this many
/// times by default; see [`Harness::retries`].
pub const DEFAULT_RETRIES: u32 = 1;

/// Linear backoff unit between re-attempts of a transient failure:
/// attempt `n` sleeps `n *` this first.
const RETRY_BACKOFF: Duration = Duration::from_millis(25);

/// One unit of work: simulate `program` under `config`.
///
/// The workload name participates in the content key and in progress
/// output; two jobs with the same name but different programs MUST
/// differ somewhere in `config` (in this workspace the workload seed
/// and parameters are part of the benchmark definition, so the name
/// uniquely determines the program).
#[derive(Clone)]
pub struct Job {
    /// Benchmark name (e.g. `"gzip"`), used for keying and display.
    pub workload: String,
    /// The program to simulate, shared across jobs without copying.
    pub program: Arc<Program>,
    /// Full simulator configuration, including strategy and budget.
    pub config: SimConfig,
}

impl Job {
    /// Builds a job.
    pub fn new(workload: impl Into<String>, program: Arc<Program>, config: SimConfig) -> Job {
        Job {
            workload: workload.into(),
            program,
            config,
        }
    }

    /// The job's content key (see [`job_key`]).
    pub fn key(&self) -> u64 {
        job_key(&self.workload, &self.config)
    }

    /// Runs the cell, surfacing every way it can fail as a typed
    /// [`JobError`] — an invalid configuration is a *job* defect, never
    /// grounds to panic a shared worker thread. With `with_metrics`
    /// set, a metrics-only [`Recorder`] rides along and the second
    /// element is the rendered JSONL metrics line for this run. With
    /// `with_attrib` set, the same recorder also accumulates the CPI
    /// stack and per-instruction lifecycle records, and the report
    /// comes back with `attrib` attached.
    fn try_simulate(
        &self,
        with_metrics: bool,
        with_attrib: bool,
    ) -> Result<(SimReport, Option<String>), JobError> {
        self.try_simulate_with(None, with_metrics, with_attrib)
    }

    /// [`Job::try_simulate`] with an optional worker-local
    /// [`BatchRunner`]: when one is passed, the simulation is built
    /// through it so the engine arena is recycled across cells and the
    /// fast-forward checkpoint for `(program, warmup)` is captured once
    /// and reused. Reports are byte-identical either way — the runner
    /// only changes *where* the engine's memory comes from.
    fn try_simulate_with<'p>(
        &'p self,
        runner: Option<&mut BatchRunner<'p>>,
        with_metrics: bool,
        with_attrib: bool,
    ) -> Result<(SimReport, Option<String>), JobError> {
        // Fault injection: the `job-panic` fail point panics inside the
        // job body — exactly where a simulator bug would — so the
        // isolation layer can be exercised end-to-end. The optional
        // argument `workload[:strategy]` confines the blast radius to
        // one cell of a sweep.
        if failpoint::is_active("job-panic") && self.matches_fail_point() {
            panic!(
                "fail point job-panic: injected failure in {}/{}",
                self.workload,
                self.config.strategy.name()
            );
        }
        let builder = Simulation::builder(&self.program).config(self.config);
        if with_metrics || with_attrib {
            // One recorder serves both requests: metrics accumulate
            // unconditionally, lifecycle records only when asked for.
            let recorder = Rc::new(Recorder::new(RecorderConfig {
                collect_attrib: with_attrib,
                ..RecorderConfig::metrics_only()
            }));
            let probe: Rc<dyn ctcp_telemetry::Probe> = Rc::clone(&recorder) as _;
            let mut report = run_builder(runner, builder.probe(probe))?;
            if with_attrib {
                report.attrib = Some(recorder.attrib_report());
            }
            let line = with_metrics
                .then(|| metrics_line(&self.workload, &report.strategy, &recorder.metrics()));
            Ok((report, line))
        } else {
            Ok((run_builder(runner, builder)?, None))
        }
    }

    /// Whether the `job-panic` fail point's argument selects this job.
    /// No argument selects every job; `workload` or `workload:strategy`
    /// (strategy as rendered by `Strategy::name`) narrows it.
    fn matches_fail_point(&self) -> bool {
        match failpoint::arg("job-panic") {
            None => true,
            Some(arg) => {
                let (workload, strategy) = match arg.split_once(':') {
                    Some((w, s)) => (w, Some(s)),
                    None => (arg.as_str(), None),
                };
                workload == self.workload
                    && strategy.is_none_or(|s| s == self.config.strategy.name())
            }
        }
    }
}

/// Why one job could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The configuration failed [`SimBuilder`](ctcp_sim::SimBuilder)
    /// validation (rendered [`ConfigError`](ctcp_sim::ConfigError)).
    /// Deterministic: never retried.
    InvalidConfig(String),
    /// The simulation aborted with a typed [`SimError`] (watchdog trip
    /// or cycle-budget exhaustion). Deterministic: never retried.
    Sim(SimError),
    /// The job panicked — a simulator bug, caught at the isolation
    /// boundary so it cannot take the worker (or the batch) down.
    /// Treated as transient and retried.
    Panic(String),
    /// The job exceeded the harness's per-job wall-clock timeout.
    /// Treated as transient and retried.
    Timeout {
        /// The configured limit that was exceeded.
        limit: Duration,
    },
    /// The job's queued cell was dropped because the requesting client
    /// disconnected before a shared-pool worker picked it up. The
    /// result had no recipient; nothing was simulated. Never retried.
    Cancelled,
    /// The batch was refused admission by a shared scheduler's queue
    /// bound before any of its cells ran. Never retried — the caller
    /// is expected to surface the rejection (the sweep service answers
    /// 503) rather than spin.
    Saturated(Saturated),
    /// The cell was quarantined by the shared scheduler's supervisor:
    /// its key panicked repeatedly (across retries and respawned
    /// workers), so further attempts are refused instead of burning
    /// the pool. The rest of the request proceeds normally — poison is
    /// per cell, never per request. Never retried.
    CellPoisoned {
        /// Worker panics observed on this cell's key before quarantine.
        panics: u32,
    },
}

impl JobError {
    /// Whether a retry could plausibly change the outcome.
    fn is_transient(&self) -> bool {
        matches!(self, JobError::Panic(_) | JobError::Timeout { .. })
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            JobError::Sim(e) => write!(f, "simulation aborted: {e}"),
            JobError::Panic(msg) => write!(f, "panic: {msg}"),
            JobError::Timeout { limit } => {
                write!(f, "timed out after {:.1}s", limit.as_secs_f64())
            }
            JobError::Cancelled => write!(f, "cancelled: client disconnected before the cell ran"),
            JobError::Saturated(s) => write!(f, "rejected: {s}"),
            JobError::CellPoisoned { panics } => {
                write!(f, "poisoned: cell quarantined after {panics} worker panics")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// A failed job together with its identity and retry history — enough
/// to render one row of a failure table without the original `Job`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The job's workload name.
    pub workload: String,
    /// The job's strategy, as rendered by `Strategy::name`.
    pub strategy: String,
    /// The final error, after any retries.
    pub error: JobError,
    /// Re-attempts performed before giving up (or succeeding — a
    /// failure here means none of them worked).
    pub retries: u32,
}

/// What one job of a batch came to. Slot `i` of
/// [`Harness::try_run`]'s result describes job `i`, always.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job produced a report — simulated, memoized, or copied from
    /// an identical job in the same batch. Boxed so the failure
    /// variants don't pay for the report's size.
    Ok(Box<SimReport>),
    /// The job (and every retry) failed.
    Failed(JobFailure),
    /// The job was coalesced onto the identical job at index `source`,
    /// which itself failed — so this one was never attempted.
    Skipped {
        /// Index of the failed job this one was coalesced onto.
        source: usize,
    },
}

impl JobOutcome {
    /// The report, when the job produced one.
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            JobOutcome::Ok(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// The failure, when the job failed outright (not [`Skipped`]).
    ///
    /// [`Skipped`]: JobOutcome::Skipped
    pub fn failure(&self) -> Option<&JobFailure> {
        match self {
            JobOutcome::Failed(f) => Some(f),
            _ => None,
        }
    }
}

/// Renders the failure rows of a batch — one line per [`Failed`] or
/// [`Skipped`] outcome, prefixed by a `N of M jobs failed:` heading —
/// or `None` when every job succeeded. [`Harness::run`] panics with
/// this text; `ctcp sweep` prints it before exiting non-zero.
///
/// [`Failed`]: JobOutcome::Failed
/// [`Skipped`]: JobOutcome::Skipped
pub fn failure_table(outcomes: &[JobOutcome]) -> Option<String> {
    let broken = outcomes
        .iter()
        .filter(|o| !matches!(o, JobOutcome::Ok(_)))
        .count();
    if broken == 0 {
        return None;
    }
    let mut out = format!("{broken} of {} jobs failed:\n", outcomes.len());
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            JobOutcome::Ok(_) => {}
            JobOutcome::Failed(f) => {
                out.push_str(&format!(
                    "  #{i} {}/{}: {} [retries: {}]\n",
                    f.workload, f.strategy, f.error, f.retries
                ));
            }
            JobOutcome::Skipped { source } => {
                out.push_str(&format!("  #{i} skipped (duplicate of failed #{source})\n"));
            }
        }
    }
    Some(out)
}

/// One protected attempt at a job: panics are caught at this boundary
/// and, when `timeout` is set, the attempt is abandoned after the
/// limit. Abandonment is advisory — the simulation keeps running on a
/// detached thread until its own watchdog or cycle budget stops it —
/// but the *batch* moves on immediately.
fn attempt(
    job: &Job,
    with_metrics: bool,
    with_attrib: bool,
    timeout: Option<Duration>,
) -> Result<(SimReport, Option<String>), JobError> {
    let protected = move |job: &Job| match std::panic::catch_unwind(AssertUnwindSafe(|| {
        job.try_simulate(with_metrics, with_attrib)
    })) {
        Ok(r) => r,
        // `&*`: downcast the payload, not the box holding it.
        Err(payload) => Err(JobError::Panic(panic_message(&*payload))),
    };
    let Some(limit) = timeout else {
        return protected(job);
    };
    let (tx, rx) = mpsc::channel();
    let detached = job.clone();
    std::thread::spawn(move || {
        let _ = tx.send(protected(&detached));
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(JobError::Timeout { limit }),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(JobError::Panic("job thread died without reporting".into()))
        }
    }
}

/// Runs a job with the retry policy: transient failures re-attempt up
/// to `max_retries` times with linear backoff; deterministic failures
/// return immediately. The second element is the number of retries
/// actually performed.
fn execute(
    job: &Job,
    with_metrics: bool,
    with_attrib: bool,
    timeout: Option<Duration>,
    max_retries: u32,
) -> (Result<(SimReport, Option<String>), JobError>, u32) {
    let mut retries = 0;
    loop {
        match attempt(job, with_metrics, with_attrib, timeout) {
            Ok(ok) => return (Ok(ok), retries),
            Err(e) => {
                if !e.is_transient() || retries >= max_retries {
                    return (Err(e), retries);
                }
                retries += 1;
                std::thread::sleep(RETRY_BACKOFF * retries);
            }
        }
    }
}

/// Builds and runs one configured simulation, either through a
/// [`BatchRunner`] (arena recycling + shared warmup checkpoints) or
/// standalone, normalizing both failure shapes onto [`JobError`].
fn run_builder<'p>(
    runner: Option<&mut BatchRunner<'p>>,
    builder: SimBuilder<'p>,
) -> Result<SimReport, JobError> {
    match runner {
        Some(runner) => runner.try_run(builder).map_err(|e| match e {
            BatchError::Config(c) => JobError::InvalidConfig(c.to_string()),
            BatchError::Sim(s) => JobError::Sim(s),
        }),
        None => builder
            .build()
            .map_err(|e| JobError::InvalidConfig(e.to_string()))?
            .try_run()
            .map_err(JobError::Sim),
    }
}

/// The batched counterpart of [`execute`]: runs `job` through a
/// worker-local [`BatchRunner`] with the same retry policy and the same
/// `catch_unwind` isolation boundary. A panic resets the runner — its
/// arena and checkpoint may have been torn mid-flight — so the retry
/// (and every later cell on this worker) starts from clean state.
/// Timeouts are not supported here: the detached-thread timeout path
/// would move the runner off-thread, so the harness falls back to
/// [`execute`] whenever a job timeout is configured.
fn execute_batched<'p>(
    runner: &mut BatchRunner<'p>,
    job: &'p Job,
    with_metrics: bool,
    with_attrib: bool,
    max_retries: u32,
) -> (Result<(SimReport, Option<String>), JobError>, u32) {
    let mut retries = 0;
    loop {
        let reborrow = &mut *runner;
        let result = match std::panic::catch_unwind(AssertUnwindSafe(move || {
            job.try_simulate_with(Some(reborrow), with_metrics, with_attrib)
        })) {
            Ok(r) => r,
            Err(payload) => {
                *runner = BatchRunner::new();
                Err(JobError::Panic(panic_message(&*payload)))
            }
        };
        match result {
            Ok(ok) => return (Ok(ok), retries),
            Err(e) => {
                if !e.is_transient() || retries >= max_retries {
                    return (Err(e), retries);
                }
                retries += 1;
                std::thread::sleep(RETRY_BACKOFF * retries);
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".into()
    }
}

/// What happened to the most recent [`Harness::run`] batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchStats {
    /// Jobs submitted.
    pub total: usize,
    /// Jobs answered from the result store without simulating.
    pub store_hits: usize,
    /// Jobs coalesced onto an identical job earlier in the batch.
    pub deduped: usize,
    /// Jobs actually simulated.
    pub simulated: usize,
    /// Jobs that failed after exhausting their retries.
    pub failed: usize,
    /// Jobs dropped from the shared scheduler's queue because the
    /// requesting client disconnected before they ran (a subset of
    /// `failed`; their cells were never simulated).
    pub cancelled: usize,
    /// Jobs never attempted because the identical job they coalesced
    /// onto failed.
    pub skipped: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

/// A reusable batch runner: worker pool + optional memoizing store +
/// progress reporting. See the crate docs for the overall model.
pub struct Harness {
    jobs: usize,
    store: Option<ResultStore>,
    sched: Option<CellScheduler>,
    journal: Option<(Journal, String)>,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    progress: Option<bool>,
    metrics_out: Option<PathBuf>,
    metrics_file: Option<std::fs::File>,
    attrib: bool,
    retries: u32,
    job_timeout: Option<Duration>,
    telemetry: Metrics,
    last: BatchStats,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with auto parallelism, no store, and auto progress.
    pub fn new() -> Harness {
        Harness {
            jobs: 0,
            store: None,
            sched: None,
            journal: None,
            cancel: None,
            progress: None,
            metrics_out: None,
            metrics_file: None,
            attrib: false,
            retries: DEFAULT_RETRIES,
            job_timeout: None,
            telemetry: Metrics::new(),
            last: BatchStats::default(),
        }
    }

    /// Sets the worker count. `0` means auto (available parallelism);
    /// `1` runs every job in submission order on the calling thread.
    pub fn jobs(mut self, n: usize) -> Harness {
        self.jobs = n;
        self
    }

    /// Attaches a result store; subsequent batches memoize through it.
    pub fn with_store(mut self, store: ResultStore) -> Harness {
        self.telemetry
            .add(Counter::StoreQuarantined, store.stats().quarantined);
        self.store = Some(store);
        self
    }

    /// Routes this harness's batches through a shared [`CellScheduler`]
    /// instead of a private scoped worker pool. Cells are interleaved
    /// fairly with every other request feeding the same pool; results,
    /// store writes and progress still land on the calling thread in
    /// the usual order, so outputs are byte-identical. A configured
    /// [`Harness::job_timeout`] or `CTCP_BATCH=off` falls back to the
    /// private pool (the scheduler's workers never run timed attempts).
    /// Callers that configured an admission bound on the scheduler
    /// should run batches via [`Harness::try_run_admitted`] to observe
    /// rejections as a typed [`Saturated`] instead of failed outcomes.
    pub fn with_scheduler(mut self, sched: CellScheduler) -> Harness {
        self.sched = Some(sched);
        self
    }

    /// Attaches a request [`Journal`]: every cell this harness memoizes
    /// into the store is also marked in the journal under `token`, so
    /// a daemon restart knows which cells of the journaled request were
    /// already finished. Mark failures are best-effort (the store line
    /// is the authority; a lost mark only costs a redundant store hit).
    pub fn with_journal(mut self, journal: Journal, token: impl Into<String>) -> Harness {
        self.journal = Some((journal, token.into()));
        self
    }

    /// Attaches a cancellation token checked between cell completions
    /// of a scheduled batch: once it reads `true`, the batch's
    /// still-queued cells are dropped (running cells finish and are
    /// memoized) and their outcomes come back as
    /// [`JobError::Cancelled`]. The sweep service sets the token when
    /// a client's connection breaks mid-stream. Ignored by the
    /// private-pool path, which always runs a batch to completion.
    pub fn cancel_token(mut self, token: Arc<std::sync::atomic::AtomicBool>) -> Harness {
        self.cancel = Some(token);
        self
    }

    /// Sets how many times a *transient* job failure (panic, timeout)
    /// is re-attempted before the job is reported as
    /// [`JobOutcome::Failed`]. Deterministic failures — invalid
    /// configuration, watchdog trips — are never retried. Defaults to
    /// [`DEFAULT_RETRIES`]; `0` disables retrying.
    pub fn retries(mut self, n: u32) -> Harness {
        self.retries = n;
        self
    }

    /// Sets an advisory per-job wall-clock timeout. An attempt that
    /// exceeds it is abandoned (the simulation winds down on a
    /// detached thread under its own watchdog) and counts as a
    /// transient [`JobError::Timeout`]. Off by default: the
    /// simulator-level watchdog and cycle budget already bound every
    /// healthy job.
    pub fn job_timeout(mut self, limit: Duration) -> Harness {
        self.job_timeout = Some(limit);
        self
    }

    /// Streams one JSONL metrics record per **simulated** job to `path`
    /// (appending across batches). Jobs answered from the result store
    /// or coalesced onto a duplicate produce no metrics line — metrics
    /// come from a live [`Recorder`] riding along with the simulation,
    /// which a memoized report does not have.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Harness {
        self.metrics_out = Some(path.into());
        self
    }

    /// Turns on cycle attribution: every simulated job carries an
    /// attribution-collecting [`Recorder`] and its report comes back
    /// with [`SimReport::attrib`](ctcp_sim::SimReport) populated (a CPI
    /// stack plus critical-path summary). Store lines written before
    /// attribution existed — or by non-attrib runs — do not satisfy an
    /// attrib batch: such hits are rejected, the cell is re-simulated,
    /// and the refreshed line (a superset) overwrites the old one, so
    /// later batches of either kind hit. Off by default: attribution
    /// records cost memory proportional to the instruction budget.
    pub fn attrib(mut self, on: bool) -> Harness {
        self.attrib = on;
        self
    }

    /// Forces progress output on or off (default: on iff stderr is a
    /// terminal).
    pub fn progress(mut self, on: bool) -> Harness {
        self.progress = Some(on);
        self
    }

    /// The worker count a batch would use right now.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Statistics for the most recent batch.
    pub fn last_batch(&self) -> BatchStats {
        self.last
    }

    /// Counters of the attached store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(ResultStore::stats)
    }

    /// The harness's own telemetry: `harness_job_failures`,
    /// `harness_retries` and `store_quarantined` counters, accumulated
    /// across batches.
    pub fn telemetry(&self) -> &Metrics {
        &self.telemetry
    }

    /// Runs a batch and returns one report per job, in job order.
    ///
    /// Execution order across workers is nondeterministic, but the
    /// returned vector is not: slot `i` always holds job `i`'s report,
    /// and each simulation is itself deterministic, so the output is
    /// identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`failure_table`] when any job fails —
    /// but only **after** the whole batch has run, so every successful
    /// cell has already been memoized into the store and counted.
    /// Callers that want to keep going (the sweep command does) use
    /// [`Harness::try_run`] and handle the failures as data.
    pub fn run(&mut self, jobs: &[Job]) -> Vec<SimReport> {
        let outcomes = self.try_run(jobs);
        if let Some(table) = failure_table(&outcomes) {
            panic!("{table}");
        }
        outcomes
            .into_iter()
            .map(|o| match o {
                JobOutcome::Ok(r) => *r,
                _ => unreachable!("failure_table was None"),
            })
            .collect()
    }

    /// Runs a batch with per-job fault isolation and returns one
    /// [`JobOutcome`] per job, in job order.
    ///
    /// Each job runs behind a `catch_unwind` boundary (plus an optional
    /// wall-clock timeout), so one wedged or crashing cell cannot take
    /// down the batch: the remaining jobs still run, successful results
    /// still reach the result store, and the failure comes back as
    /// [`JobOutcome::Failed`] carrying the [`JobError`] and retry
    /// count. Transient failures are retried per
    /// [`Harness::retries`]. On the all-success path the outcomes are
    /// exactly the reports [`Harness::run`] returns, in the same order.
    pub fn try_run(&mut self, jobs: &[Job]) -> Vec<JobOutcome> {
        let mut sink = StderrProgress::new(self.progress);
        self.try_run_with_progress(jobs, &mut sink)
    }

    /// [`Harness::try_run`] with per-cell progress routed to `sink`
    /// instead of the default stderr status line.
    ///
    /// The sink is called on the submitting thread only — never
    /// concurrently — once per *simulated* cell in completion order
    /// (store hits and coalesced duplicates produce no call), bracketed
    /// by [`ProgressSink::batch_start`] and [`ProgressSink::batch_end`].
    /// The sweep service uses this to forward a batch's progress to the
    /// requesting client rather than the daemon's own stderr.
    ///
    /// With a shared scheduler attached (see
    /// [`Harness::with_scheduler`]) an admission rejection is folded
    /// into the outcomes as [`JobError::Saturated`] failures; callers
    /// that want the rejection as a typed error — before anything has
    /// been streamed — use [`Harness::try_run_admitted`].
    pub fn try_run_with_progress(
        &mut self,
        jobs: &[Job],
        sink: &mut dyn ProgressSink,
    ) -> Vec<JobOutcome> {
        match self.try_run_admitted(jobs, sink) {
            Ok(outcomes) => outcomes,
            Err(sat) => jobs
                .iter()
                .map(|j| {
                    JobOutcome::Failed(JobFailure {
                        workload: j.workload.clone(),
                        strategy: j.config.strategy.name(),
                        error: JobError::Saturated(sat),
                        retries: 0,
                    })
                })
                .collect(),
        }
    }

    /// [`Harness::try_run_with_progress`] with admission control made
    /// visible: when the batch's pending cells are refused by the
    /// shared scheduler's queue bound, returns [`Saturated`] *before*
    /// any progress has been emitted through `sink`, so a service can
    /// answer 503 with a clean (unstreamed) response. Fully-memoized
    /// batches have no pending cells, never touch the scheduler, and
    /// therefore cannot be refused.
    ///
    /// # Errors
    ///
    /// [`Saturated`] only; without a scheduler (or without a queue
    /// bound) the call always succeeds.
    pub fn try_run_admitted(
        &mut self,
        jobs: &[Job],
        sink: &mut dyn ProgressSink,
    ) -> Result<Vec<JobOutcome>, Saturated> {
        let batch_start = Instant::now();
        let with_metrics = self.open_metrics_sink();
        let with_attrib = self.attrib;
        let keys: Vec<u64> = jobs.iter().map(Job::key).collect();
        let mut results: Vec<Option<JobOutcome>> = vec![None; jobs.len()];

        // Phase 1: answer what the store already knows. An attrib batch
        // only accepts lines that carry attribution — anything older is
        // left to re-simulate (and the fresh superset overwrites it).
        let mut store_hits = 0;
        if let Some(store) = &mut self.store {
            for (slot, &key) in results.iter_mut().zip(&keys) {
                if let Some(report) = store.get(key) {
                    if !with_attrib || report.attrib.is_some() {
                        *slot = Some(JobOutcome::Ok(Box::new(report)));
                        store_hits += 1;
                    }
                }
            }
        }

        // Phase 2: coalesce duplicate keys; simulate each key once.
        let mut first_of: HashMap<u64, usize> = HashMap::new();
        let mut pending: Vec<usize> = Vec::new();
        let mut deduped = 0;
        for (i, &key) in keys.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = first_of.entry(key) {
                e.insert(i);
                pending.push(i);
            } else {
                deduped += 1;
            }
        }

        // Phase 3: execute the pending set. Each worker (or the calling
        // thread at `--jobs 1`) owns one BatchRunner, so consecutive
        // cells on that worker reuse one engine arena and share
        // fast-forward checkpoints. Batching is on by default; a
        // configured job timeout disables it (the timeout path detaches
        // the attempt onto a fresh thread), and `CTCP_BATCH=off` forces
        // the historical one-simulation-per-job path for A/B timing.
        let batching =
            self.job_timeout.is_none() && std::env::var("CTCP_BATCH").map_or(true, |v| v != "off");
        let workers = self.effective_jobs().min(pending.len().max(1));
        let (retries, timeout) = (self.retries, self.job_timeout);
        if batching && self.sched.is_some() {
            // Shared-pool path: the pending cells are handed to the
            // scheduler, which interleaves them fairly with every other
            // in-flight request. Admission happens *before* the first
            // progress event, so a refused batch streams nothing.
            let sched = self.sched.clone().expect("just checked");
            let handle = if pending.is_empty() {
                None // fully memoized: never touch the worker queue
            } else {
                let cells = pending
                    .iter()
                    .map(|&i| sched::Cell {
                        index: i,
                        job: jobs[i].clone(),
                        with_metrics,
                        with_attrib,
                        retries,
                    })
                    .collect();
                Some(sched.submit(cells)?)
            };
            sink.batch_start(pending.len());
            if let Some(handle) = handle {
                let mut outstanding = pending.len();
                let mut done = 0usize;
                let mut cancel_sent = false;
                while outstanding > 0 {
                    // The cancel token is set by the progress sink when
                    // the client's stream breaks, so check it between
                    // completions: queued cells are dropped, running
                    // cells finish (and memoize) normally.
                    if !cancel_sent
                        && self
                            .cancel
                            .as_ref()
                            .is_some_and(|c| c.load(Ordering::Relaxed))
                    {
                        handle.cancel();
                        cancel_sent = true;
                    }
                    match handle.recv() {
                        Some(sched::CellDone::Finished {
                            index,
                            result,
                            retries: used,
                            took,
                            worker,
                        }) => {
                            done += 1;
                            sink.cell_done_on(done, &jobs[index].workload, took, worker);
                            results[index] =
                                Some(self.collect(&jobs[index], keys[index], *result, used));
                            outstanding -= 1;
                        }
                        Some(sched::CellDone::Cancelled { count }) => outstanding -= count,
                        None => break, // pool died; fail the remainder below
                    }
                }
                for &i in &pending {
                    if results[i].is_none() {
                        results[i] = Some(JobOutcome::Failed(JobFailure {
                            workload: jobs[i].workload.clone(),
                            strategy: jobs[i].config.strategy.name(),
                            error: JobError::Cancelled,
                            retries: 0,
                        }));
                    }
                }
            }
        } else if workers <= 1 {
            sink.batch_start(pending.len());
            let mut runner = BatchRunner::new();
            for (done, &i) in pending.iter().enumerate() {
                let t = Instant::now();
                let (result, used) = if batching {
                    execute_batched(&mut runner, &jobs[i], with_metrics, with_attrib, retries)
                } else {
                    execute(&jobs[i], with_metrics, with_attrib, timeout, retries)
                };
                sink.cell_done(done + 1, &jobs[i].workload, t.elapsed());
                results[i] = Some(self.collect(&jobs[i], keys[i], result, used));
            }
        } else {
            sink.batch_start(pending.len());
            let cursor = AtomicUsize::new(0);
            type Done = (
                usize,
                Result<(SimReport, Option<String>), JobError>,
                u32,
                Duration,
            );
            let (tx, rx) = mpsc::channel::<Done>();
            let pending_ref = &pending;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut runner = BatchRunner::new();
                        loop {
                            let next = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = pending_ref.get(next) else {
                                break;
                            };
                            let t = Instant::now();
                            let (result, used) = if batching {
                                execute_batched(
                                    &mut runner,
                                    &jobs[i],
                                    with_metrics,
                                    with_attrib,
                                    retries,
                                )
                            } else {
                                execute(&jobs[i], with_metrics, with_attrib, timeout, retries)
                            };
                            if tx.send((i, result, used, t.elapsed())).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                // Collect on the submitting thread: store writes,
                // metrics lines, and progress stay single-threaded.
                let mut done = 0;
                for (i, result, used, took) in rx {
                    done += 1;
                    sink.cell_done(done, &jobs[i].workload, took);
                    results[i] = Some(self.collect(&jobs[i], keys[i], result, used));
                }
            });
        }
        sink.batch_end();

        // Phase 4: copy coalesced outcomes into their duplicate slots.
        for (i, &key) in keys.iter().enumerate() {
            if results[i].is_none() {
                let src = first_of[&key];
                results[i] = Some(match results[src].as_ref().expect("source slot ran") {
                    JobOutcome::Ok(report) => JobOutcome::Ok(report.clone()),
                    _ => JobOutcome::Skipped { source: src },
                });
            }
        }

        let outcomes: Vec<JobOutcome> = results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();
        let cancelled = outcomes
            .iter()
            .filter(
                |o| matches!(o, JobOutcome::Failed(f) if matches!(f.error, JobError::Cancelled)),
            )
            .count();
        self.last = BatchStats {
            total: jobs.len(),
            store_hits,
            deduped,
            simulated: pending.len() - cancelled,
            failed: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Failed(_)))
                .count(),
            cancelled,
            skipped: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Skipped { .. }))
                .count(),
            wall: batch_start.elapsed(),
        };
        Ok(outcomes)
    }

    /// Books one finished attempt: store write and metrics line on
    /// success, failure telemetry otherwise. Runs on the submitting
    /// thread only.
    fn collect(
        &mut self,
        job: &Job,
        key: u64,
        result: Result<(SimReport, Option<String>), JobError>,
        retries_used: u32,
    ) -> JobOutcome {
        self.telemetry
            .add(Counter::HarnessRetries, u64::from(retries_used));
        match result {
            Ok((report, metrics)) => {
                self.record(key, &job.workload, &report);
                self.record_metrics(metrics);
                JobOutcome::Ok(Box::new(report))
            }
            Err(error) => {
                self.telemetry.add(Counter::HarnessJobFailures, 1);
                JobOutcome::Failed(JobFailure {
                    workload: job.workload.clone(),
                    strategy: job.config.strategy.name(),
                    error,
                    retries: retries_used,
                })
            }
        }
    }

    /// Opens (or keeps open) the metrics sink; returns whether metrics
    /// recording is active for this batch.
    fn open_metrics_sink(&mut self) -> bool {
        let Some(path) = &self.metrics_out else {
            return false;
        };
        if self.metrics_file.is_none() {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => self.metrics_file = Some(f),
                Err(e) => {
                    eprintln!("warning: cannot open metrics file {}: {e}", path.display());
                    self.metrics_out = None;
                    return false;
                }
            }
        }
        true
    }

    fn record_metrics(&mut self, line: Option<String>) {
        let (Some(line), Some(f)) = (line, self.metrics_file.as_mut()) else {
            return;
        };
        if let Err(e) = writeln!(f, "{line}") {
            eprintln!("warning: metrics write failed: {e}");
        }
    }

    fn record(&mut self, key: u64, workload: &str, report: &SimReport) {
        if let Some(store) = &mut self.store {
            if let Err(e) = store.put(key, workload, report) {
                // A broken store must not fail the batch; warn once per
                // failure and continue unmemoized.
                eprintln!("warning: result store write failed: {e}");
            } else if let Some((journal, token)) = &self.journal {
                if let Err(e) = journal.mark_cell(token, key) {
                    eprintln!("warning: journal cell mark failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use ctcp_isa::{Program, ProgramBuilder, Reg};
    use ctcp_sim::{SimConfig, SimReport, Simulation};
    use std::path::PathBuf;
    use std::sync::Arc;

    /// An endless loop with a little ILP and a memory access, enough to
    /// exercise every report field; the sim's instruction budget stops it.
    pub(crate) fn tiny_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R2, 0x100);
        let top = b.here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.add(Reg::R3, Reg::R1, Reg::R1);
        b.ld(Reg::R4, Reg::R2, 0);
        b.st(Reg::R3, Reg::R2, 8);
        b.jmp(top);
        Arc::new(b.build())
    }

    pub(crate) fn sample_report() -> SimReport {
        let config = SimConfig {
            max_insts: 1_000,
            ..SimConfig::default()
        };
        Simulation::builder(&tiny_program())
            .config(config)
            .build()
            .unwrap()
            .run()
    }

    /// Fail-point state is process-global; unit tests that arm points
    /// (in any module of this crate) serialise behind this lock.
    pub(crate) static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A fresh per-test scratch directory under the system temp dir.
    pub(crate) fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ctcp-harness-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{temp_dir, tiny_program};
    use ctcp_sim::Strategy;

    fn grid(budgets: &[u64]) -> Vec<Job> {
        let program = tiny_program();
        let mut jobs = Vec::new();
        for &max_insts in budgets {
            for strategy in [
                Strategy::Baseline,
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ] {
                let config = SimConfig {
                    max_insts,
                    strategy,
                    ..SimConfig::default()
                };
                jobs.push(Job::new("tiny", Arc::clone(&program), config));
            }
        }
        jobs
    }

    fn render(reports: &[SimReport]) -> String {
        reports
            .iter()
            .map(|r| format!("{r:?}\n"))
            .collect::<String>()
    }

    #[test]
    fn batched_results_match_direct_simulation() {
        // Harness workers batch by default: one resident BatchRunner
        // per worker recycles the engine arena across cells and shares
        // fast-forward checkpoints. The reports must be byte-identical
        // to building each simulation directly, warmup cells included.
        let program = tiny_program();
        let mut jobs = grid(&[800, 1_600]);
        for (warmup, max_insts) in [(500u64, 1_000u64), (500, 1_200), (900, 1_000)] {
            // The first two cells share (program, warmup) but are
            // distinct jobs, so the checkpoint-reuse path runs — not
            // just the capture path.
            let config = SimConfig {
                max_insts,
                warmup_insts: warmup,
                ..SimConfig::default()
            };
            jobs.push(Job::new("tiny", Arc::clone(&program), config));
        }
        let batched = Harness::new().jobs(1).progress(false).run(&jobs);
        let direct: Vec<SimReport> = jobs
            .iter()
            .map(|j| {
                Simulation::builder(&j.program)
                    .config(j.config)
                    .build()
                    .unwrap()
                    .run()
            })
            .collect();
        assert_eq!(render(&batched), render(&direct));
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let jobs = grid(&[800, 1_600, 2_400]);
        let serial = Harness::new().jobs(1).progress(false).run(&jobs);
        let parallel = Harness::new().jobs(8).progress(false).run(&jobs);
        assert_eq!(render(&serial), render(&parallel));
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs = grid(&[600, 1_200]);
        let reports = Harness::new().jobs(4).progress(false).run(&jobs);
        assert_eq!(reports.len(), jobs.len());
        for (job, report) in jobs.iter().zip(&reports) {
            assert_eq!(report.strategy, job.config.strategy.name());
            assert_eq!(report.instructions, job.config.max_insts);
        }
    }

    #[test]
    fn duplicate_jobs_are_coalesced() {
        let mut jobs = grid(&[700]);
        jobs.extend(grid(&[700]));
        let mut h = Harness::new().jobs(4).progress(false);
        let reports = h.run(&jobs);
        let stats = h.last_batch();
        assert_eq!(stats.total, 6);
        assert_eq!(stats.simulated, 3);
        assert_eq!(stats.deduped, 3);
        assert_eq!(render(&reports[..3]), render(&reports[3..]));
    }

    #[test]
    fn warm_store_skips_all_simulation() {
        let dir = temp_dir("warm-store");
        let jobs = grid(&[900, 1_800]);

        let mut cold = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let first = cold.run(&jobs);
        assert_eq!(cold.last_batch().store_hits, 0);
        assert_eq!(cold.last_batch().simulated, jobs.len());

        let mut warm = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let second = warm.run(&jobs);
        assert_eq!(warm.last_batch().store_hits, jobs.len());
        assert_eq!(warm.last_batch().simulated, 0);
        assert_eq!(render(&first), render(&second));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_writes_one_line_per_simulated_job() {
        let dir = temp_dir("metrics-out");
        let path = dir.join("metrics.jsonl");
        let jobs = grid(&[500]); // three unique cells
        let mut h = Harness::new().jobs(2).progress(false).metrics_out(&path);
        let reports = h.run(&jobs);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        // Each line parses, names the workload, and its counters
        // reconcile with the matching report.
        for line in text.lines() {
            let v = ctcp_sim::json::Value::parse(line).unwrap();
            assert_eq!(v.get("workload").unwrap().as_str().unwrap(), "tiny");
            let strategy = v.get("strategy").unwrap().as_str().unwrap();
            let report = reports
                .iter()
                .find(|r| r.strategy == strategy)
                .expect("line matches a report");
            let counters = v.get("metrics").unwrap().get("counters").unwrap();
            assert_eq!(
                counters.get("retired").unwrap().as_u64().unwrap(),
                report.metrics.engine.retired,
                "{strategy}"
            );
            assert_eq!(
                counters.get("cycles").unwrap().as_u64().unwrap(),
                report.cycles,
                "{strategy}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_and_coalesced_jobs_emit_no_metrics_lines() {
        let dir = temp_dir("metrics-cached");
        let path = dir.join("metrics.jsonl");
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        let mut jobs = grid(&[650]);
        jobs.extend(grid(&[650])); // duplicates coalesce
        let mut h = Harness::new()
            .jobs(2)
            .progress(false)
            .metrics_out(&path)
            .with_store(ResultStore::open(&store_dir).unwrap());
        h.run(&jobs);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            3,
            "only the three simulated cells produce lines"
        );
        // A warm second batch simulates nothing and appends nothing.
        let mut warm = Harness::new()
            .jobs(2)
            .progress(false)
            .metrics_out(&path)
            .with_store(ResultStore::open(&store_dir).unwrap());
        warm.run(&jobs);
        assert_eq!(warm.last_batch().simulated, 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attrib_batches_attach_stacks_and_reject_plain_store_lines() {
        let dir = temp_dir("attrib-store");
        let jobs = grid(&[850]);
        let width = jobs[0].config.engine.retire_width as u64;

        // A plain batch populates the store without attribution.
        let mut plain = Harness::new()
            .jobs(1)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let first = plain.run(&jobs);
        assert!(first.iter().all(|r| r.attrib.is_none()));
        drop(plain);

        // An attrib batch must not accept those hits: it re-simulates
        // and overwrites the lines with attribution-bearing supersets.
        let mut h = Harness::new()
            .jobs(1)
            .progress(false)
            .attrib(true)
            .with_store(ResultStore::open(&dir).unwrap());
        let reports = h.run(&jobs);
        assert_eq!(h.last_batch().store_hits, 0, "plain lines must miss");
        assert_eq!(h.last_batch().simulated, jobs.len());
        for (r, p) in reports.iter().zip(&first) {
            assert_eq!(r.cycles, p.cycles, "attribution must not perturb timing");
            let a = r.attrib.as_ref().expect("attrib batch attaches stacks");
            assert_eq!(a.stack.cycles, r.cycles);
            assert_eq!(a.stack.total(), r.cycles * width, "stack conserves");
        }
        drop(h);

        // The refreshed lines now satisfy attrib batches too.
        let mut warm = Harness::new()
            .jobs(1)
            .progress(false)
            .attrib(true)
            .with_store(ResultStore::open(&dir).unwrap());
        warm.run(&jobs);
        assert_eq!(warm.last_batch().store_hits, jobs.len());
        assert_eq!(warm.last_batch().simulated, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_config_fails_typed_and_spares_the_batch() {
        // One poisoned cell in a parallel batch: it must come back as
        // JobOutcome::Failed(InvalidConfig) — not panic a worker — and
        // every healthy cell must still produce its report.
        let mut jobs = grid(&[700]);
        let mut bad = SimConfig {
            max_insts: 700,
            ..SimConfig::default()
        };
        bad.engine.geometry.clusters = 0;
        jobs.insert(1, Job::new("tiny", tiny_program(), bad));
        let mut h = Harness::new().jobs(4).progress(false);
        let outcomes = h.try_run(&jobs);
        assert_eq!(outcomes.len(), 4);
        let failure = outcomes[1].failure().expect("bad cell fails");
        assert_eq!(
            failure.error,
            JobError::InvalidConfig("cluster geometry has zero clusters".into())
        );
        assert_eq!(failure.retries, 0, "deterministic failures never retry");
        for (i, o) in outcomes.iter().enumerate() {
            if i != 1 {
                assert!(o.report().is_some(), "healthy cell {i} still ran");
            }
        }
        assert_eq!(h.last_batch().failed, 1);
        assert_eq!(
            h.telemetry()
                .get(ctcp_telemetry::Counter::HarnessJobFailures),
            1
        );
        let table = failure_table(&outcomes).expect("table for a failed batch");
        assert!(table.starts_with("1 of 4 jobs failed:"), "{table}");
        assert!(table.contains("invalid configuration"), "{table}");
    }

    #[test]
    fn run_panics_with_the_failure_table_after_the_batch() {
        let dir = temp_dir("run-panics-late");
        let mut jobs = grid(&[750]);
        let mut bad = SimConfig {
            max_insts: 750,
            ..SimConfig::default()
        };
        bad.engine.geometry.slots_per_cluster = 0;
        jobs.push(Job::new("tiny", tiny_program(), bad));
        let mut h = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panic
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| h.run(&jobs)));
        std::panic::set_hook(hook);
        let payload = result.expect_err("run() must panic when a job failed");
        let msg = panic_message(&*payload);
        assert!(msg.starts_with("1 of 4 jobs failed:"), "{msg}");
        // The batch finished first: all three healthy cells were
        // memoized before the panic surfaced.
        drop(h);
        let mut warm = Harness::new()
            .jobs(1)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        warm.try_run(&grid(&[750]));
        assert_eq!(warm.last_batch().store_hits, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_jobs_time_out_as_transient_failures() {
        // A job this large takes well over a millisecond per attempt,
        // so a 1 ms advisory timeout must abandon it — twice, because
        // timeouts are transient and the default policy retries once.
        let config = SimConfig {
            max_insts: 2_000_000,
            ..SimConfig::default()
        };
        let jobs = [Job::new("tiny", tiny_program(), config)];
        let mut h = Harness::new()
            .jobs(1)
            .progress(false)
            .job_timeout(Duration::from_millis(1));
        let outcomes = h.try_run(&jobs);
        let failure = outcomes[0].failure().expect("job times out");
        assert_eq!(
            failure.error,
            JobError::Timeout {
                limit: Duration::from_millis(1)
            }
        );
        assert_eq!(failure.retries, DEFAULT_RETRIES);
        assert_eq!(
            h.telemetry().get(ctcp_telemetry::Counter::HarnessRetries),
            u64::from(DEFAULT_RETRIES)
        );
    }

    #[test]
    fn duplicates_of_a_failed_job_are_skipped() {
        let mut bad = SimConfig::default();
        bad.engine.geometry.clusters = 0;
        let jobs = [
            Job::new("tiny", tiny_program(), bad),
            Job::new("tiny", tiny_program(), bad),
        ];
        let outcomes = Harness::new().jobs(1).progress(false).try_run(&jobs);
        assert!(outcomes[0].failure().is_some());
        assert!(matches!(outcomes[1], JobOutcome::Skipped { source: 0 }));
        let table = failure_table(&outcomes).unwrap();
        assert!(
            table.contains("skipped (duplicate of failed #0)"),
            "{table}"
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut h = Harness::new().progress(false);
        assert!(h.run(&[]).is_empty());
        assert_eq!(h.last_batch().total, 0);
    }

    #[test]
    fn jobs_zero_means_auto_parallelism() {
        assert!(Harness::new().effective_jobs() >= 1);
        assert_eq!(Harness::new().jobs(3).effective_jobs(), 3);
    }

    #[test]
    fn scheduler_path_matches_private_pool_byte_for_byte() {
        let jobs = grid(&[1_500, 2_500, 3_500, 4_500]);
        let mut direct = Harness::new().jobs(2).progress(false);
        let expected = direct.run(&jobs);
        let sched = CellScheduler::start(2, 0);
        let mut shared = Harness::new().progress(false).with_scheduler(sched.clone());
        let got = shared.run(&jobs);
        sched.shutdown();
        assert_eq!(shared.last_batch().simulated, jobs.len());
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(format!("{e:?}"), format!("{g:?}"));
        }
    }

    #[test]
    fn saturated_scheduler_rejects_before_anything_runs() {
        let sched = CellScheduler::start(1, 1);
        let mut h = Harness::new().progress(false).with_scheduler(sched.clone());
        let jobs = grid(&[1_000, 2_000]);
        let err = h
            .try_run_admitted(&jobs, &mut NullProgress)
            .expect_err("6 cells > bound of 1");
        assert_eq!((err.limit, err.wanted), (1, jobs.len()));
        // The infallible wrappers fold the same rejection into typed
        // per-job failures instead.
        let outcomes = h.try_run(&jobs);
        assert!(outcomes.iter().all(|o| matches!(
            o,
            JobOutcome::Failed(f) if matches!(f.error, JobError::Saturated(_))
        )));
        sched.shutdown();
    }

    #[test]
    fn scheduled_warm_store_skips_the_queue_entirely() {
        let dir = temp_dir("sched-warm");
        let jobs = grid(&[1_500, 2_500]);
        {
            let mut h = Harness::new()
                .jobs(1)
                .progress(false)
                .with_store(ResultStore::open(&dir).unwrap());
            h.run(&jobs);
        }
        // A scheduler whose bound admits *nothing* still answers a
        // fully-warm batch: cache hits never reach the queue.
        let sched = CellScheduler::start(1, 1);
        sched
            .submit(vec![]) // occupy nothing; just prove the pool is up
            .expect("empty submit is admissible");
        let mut h = Harness::new()
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap())
            .with_scheduler(sched.clone());
        let outcomes = h
            .try_run_admitted(&jobs, &mut NullProgress)
            .expect("warm batch needs no admission");
        assert!(outcomes.iter().all(|o| o.report().is_some()));
        assert_eq!(h.last_batch().store_hits, jobs.len());
        assert_eq!(h.last_batch().simulated, 0);
        sched.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
