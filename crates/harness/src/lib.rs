//! # ctcp-harness — parallel sweep runner for the CTCP simulator
//!
//! Experiments in this workspace are grids: benchmarks × strategies ×
//! configurations, where every cell is an independent, deterministic
//! simulation. This crate owns the execution of those grids so the
//! experiment code only *describes* cells and *renders* tables.
//!
//! ## Job model
//!
//! A [`Job`] is one cell: a workload name, a shared [`Program`], and a
//! complete [`SimConfig`] (which carries the strategy and the
//! instruction budget). [`Harness::run`] executes a batch of jobs and
//! returns one [`SimReport`] per job **in job order**, regardless of
//! how many worker threads ran them — reports are collected into slots
//! indexed by job position, so downstream table rendering is
//! byte-identical at any parallelism, and `--jobs 1` degenerates to a
//! plain in-order loop on the calling thread.
//!
//! ## Memoization
//!
//! With a [`ResultStore`] attached, each job's content key
//! ([`job_key`]: FNV-1a 64 over a format-version salt, the workload
//! name, and the full `Debug` rendering of the config) is looked up
//! before simulating; hits skip the simulator entirely, and fresh
//! results are appended to the store's JSON-lines file as they
//! complete. Duplicate keys *within* a batch are also coalesced: the
//! cell is simulated once and the report is copied to every position
//! that asked for it.
//!
//! ## Progress
//!
//! When stderr is a terminal (or when forced on), a single rewriting
//! status line shows completed/total, jobs/sec, the wall time of the
//! last finished job, and an ETA. Tables on stdout are never touched.
//!
//! ## Example
//!
//! ```
//! use ctcp_harness::{Harness, Job};
//! use ctcp_isa::{ProgramBuilder, Reg};
//! use ctcp_sim::SimConfig;
//! use std::sync::Arc;
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.here();
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.jmp(top);
//! let program = Arc::new(b.build());
//!
//! let mut config = SimConfig::default();
//! config.max_insts = 2_000;
//! let jobs: Vec<Job> = (0..4)
//!     .map(|_| Job::new("spin", Arc::clone(&program), config))
//!     .collect();
//!
//! let mut harness = Harness::new().jobs(2).progress(false);
//! let reports = harness.run(&jobs);
//! assert_eq!(reports.len(), 4);
//! // All four cells share one key, so only one was simulated.
//! assert_eq!(harness.last_batch().simulated, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod progress;
mod store;

pub use store::{job_key, ResultStore, StoreStats, STORE_FORMAT_VERSION};

use ctcp_isa::Program;
use ctcp_sim::{SimConfig, SimReport, Simulation};
use ctcp_telemetry::{metrics_line, Recorder, RecorderConfig};
use progress::Progress;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One unit of work: simulate `program` under `config`.
///
/// The workload name participates in the content key and in progress
/// output; two jobs with the same name but different programs MUST
/// differ somewhere in `config` (in this workspace the workload seed
/// and parameters are part of the benchmark definition, so the name
/// uniquely determines the program).
#[derive(Clone)]
pub struct Job {
    /// Benchmark name (e.g. `"gzip"`), used for keying and display.
    pub workload: String,
    /// The program to simulate, shared across jobs without copying.
    pub program: Arc<Program>,
    /// Full simulator configuration, including strategy and budget.
    pub config: SimConfig,
}

impl Job {
    /// Builds a job.
    pub fn new(workload: impl Into<String>, program: Arc<Program>, config: SimConfig) -> Job {
        Job {
            workload: workload.into(),
            program,
            config,
        }
    }

    /// The job's content key (see [`job_key`]).
    pub fn key(&self) -> u64 {
        job_key(&self.workload, &self.config)
    }

    /// Runs the cell. With `with_metrics` set, a metrics-only
    /// [`Recorder`] rides along and the second element is the rendered
    /// JSONL metrics line for this run.
    fn simulate(&self, with_metrics: bool) -> (SimReport, Option<String>) {
        fn built<'a>(
            r: Result<Simulation<'a>, ctcp_sim::ConfigError>,
            workload: &str,
        ) -> Simulation<'a> {
            r.unwrap_or_else(|e| panic!("job {workload:?} has an invalid configuration: {e}"))
        }
        let builder = Simulation::builder(&self.program).config(self.config);
        if with_metrics {
            let recorder = Rc::new(Recorder::new(RecorderConfig::metrics_only()));
            let probe: Rc<dyn ctcp_telemetry::Probe> = Rc::clone(&recorder) as _;
            let report = built(builder.probe(probe).build(), &self.workload).run();
            let line = metrics_line(&self.workload, &report.strategy, &recorder.metrics());
            (report, Some(line))
        } else {
            (built(builder.build(), &self.workload).run(), None)
        }
    }
}

/// What happened to the most recent [`Harness::run`] batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchStats {
    /// Jobs submitted.
    pub total: usize,
    /// Jobs answered from the result store without simulating.
    pub store_hits: usize,
    /// Jobs coalesced onto an identical job earlier in the batch.
    pub deduped: usize,
    /// Jobs actually simulated.
    pub simulated: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

/// A reusable batch runner: worker pool + optional memoizing store +
/// progress reporting. See the crate docs for the overall model.
pub struct Harness {
    jobs: usize,
    store: Option<ResultStore>,
    progress: Option<bool>,
    metrics_out: Option<PathBuf>,
    metrics_file: Option<std::fs::File>,
    last: BatchStats,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with auto parallelism, no store, and auto progress.
    pub fn new() -> Harness {
        Harness {
            jobs: 0,
            store: None,
            progress: None,
            metrics_out: None,
            metrics_file: None,
            last: BatchStats::default(),
        }
    }

    /// Sets the worker count. `0` means auto (available parallelism);
    /// `1` runs every job in submission order on the calling thread.
    pub fn jobs(mut self, n: usize) -> Harness {
        self.jobs = n;
        self
    }

    /// Attaches a result store; subsequent batches memoize through it.
    pub fn with_store(mut self, store: ResultStore) -> Harness {
        self.store = Some(store);
        self
    }

    /// Streams one JSONL metrics record per **simulated** job to `path`
    /// (appending across batches). Jobs answered from the result store
    /// or coalesced onto a duplicate produce no metrics line — metrics
    /// come from a live [`Recorder`] riding along with the simulation,
    /// which a memoized report does not have.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Harness {
        self.metrics_out = Some(path.into());
        self
    }

    /// Forces progress output on or off (default: on iff stderr is a
    /// terminal).
    pub fn progress(mut self, on: bool) -> Harness {
        self.progress = Some(on);
        self
    }

    /// The worker count a batch would use right now.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Statistics for the most recent batch.
    pub fn last_batch(&self) -> BatchStats {
        self.last
    }

    /// Counters of the attached store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(ResultStore::stats)
    }

    /// Runs a batch and returns one report per job, in job order.
    ///
    /// Execution order across workers is nondeterministic, but the
    /// returned vector is not: slot `i` always holds job `i`'s report,
    /// and each simulation is itself deterministic, so the output is
    /// identical for any worker count.
    pub fn run(&mut self, jobs: &[Job]) -> Vec<SimReport> {
        let batch_start = Instant::now();
        let with_metrics = self.open_metrics_sink();
        let keys: Vec<u64> = jobs.iter().map(Job::key).collect();
        let mut results: Vec<Option<SimReport>> = vec![None; jobs.len()];

        // Phase 1: answer what the store already knows.
        let mut store_hits = 0;
        if let Some(store) = &mut self.store {
            for (slot, &key) in results.iter_mut().zip(&keys) {
                if let Some(report) = store.get(key) {
                    *slot = Some(report);
                    store_hits += 1;
                }
            }
        }

        // Phase 2: coalesce duplicate keys; simulate each key once.
        let mut first_of: HashMap<u64, usize> = HashMap::new();
        let mut pending: Vec<usize> = Vec::new();
        let mut deduped = 0;
        for (i, &key) in keys.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = first_of.entry(key) {
                e.insert(i);
                pending.push(i);
            } else {
                deduped += 1;
            }
        }

        // Phase 3: execute the pending set.
        let workers = self.effective_jobs().min(pending.len().max(1));
        let mut progress = Progress::new(self.progress, pending.len());
        if workers <= 1 {
            for (done, &i) in pending.iter().enumerate() {
                let t = Instant::now();
                let (report, metrics) = jobs[i].simulate(with_metrics);
                progress.job_done(done + 1, &jobs[i].workload, t.elapsed());
                self.record(keys[i], &jobs[i].workload, &report);
                self.record_metrics(metrics);
                results[i] = Some(report);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            type Done = (usize, SimReport, Option<String>, Duration);
            let (tx, rx) = mpsc::channel::<Done>();
            let pending_ref = &pending;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    scope.spawn(move || loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending_ref.get(next) else {
                            break;
                        };
                        let t = Instant::now();
                        let (report, metrics) = jobs[i].simulate(with_metrics);
                        if tx.send((i, report, metrics, t.elapsed())).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // Collect on the submitting thread: store writes,
                // metrics lines, and progress stay single-threaded.
                let mut done = 0;
                for (i, report, metrics, took) in rx {
                    done += 1;
                    progress.job_done(done, &jobs[i].workload, took);
                    self.record(keys[i], &jobs[i].workload, &report);
                    self.record_metrics(metrics);
                    results[i] = Some(report);
                }
            });
        }
        progress.finish();

        // Phase 4: copy coalesced results into their duplicate slots.
        for (i, &key) in keys.iter().enumerate() {
            if results[i].is_none() {
                let src = first_of[&key];
                let report = results[src].clone().expect("source slot simulated");
                results[i] = Some(report);
            }
        }

        self.last = BatchStats {
            total: jobs.len(),
            store_hits,
            deduped,
            simulated: pending.len(),
            wall: batch_start.elapsed(),
        };
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Opens (or keeps open) the metrics sink; returns whether metrics
    /// recording is active for this batch.
    fn open_metrics_sink(&mut self) -> bool {
        let Some(path) = &self.metrics_out else {
            return false;
        };
        if self.metrics_file.is_none() {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => self.metrics_file = Some(f),
                Err(e) => {
                    eprintln!("warning: cannot open metrics file {}: {e}", path.display());
                    self.metrics_out = None;
                    return false;
                }
            }
        }
        true
    }

    fn record_metrics(&mut self, line: Option<String>) {
        let (Some(line), Some(f)) = (line, self.metrics_file.as_mut()) else {
            return;
        };
        if let Err(e) = writeln!(f, "{line}") {
            eprintln!("warning: metrics write failed: {e}");
        }
    }

    fn record(&mut self, key: u64, workload: &str, report: &SimReport) {
        if let Some(store) = &mut self.store {
            if let Err(e) = store.put(key, workload, report) {
                // A broken store must not fail the batch; warn once per
                // failure and continue unmemoized.
                eprintln!("warning: result store write failed: {e}");
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use ctcp_isa::{Program, ProgramBuilder, Reg};
    use ctcp_sim::{SimConfig, SimReport, Simulation};
    use std::path::PathBuf;
    use std::sync::Arc;

    /// An endless loop with a little ILP and a memory access, enough to
    /// exercise every report field; the sim's instruction budget stops it.
    pub(crate) fn tiny_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R2, 0x100);
        let top = b.here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.add(Reg::R3, Reg::R1, Reg::R1);
        b.ld(Reg::R4, Reg::R2, 0);
        b.st(Reg::R3, Reg::R2, 8);
        b.jmp(top);
        Arc::new(b.build())
    }

    pub(crate) fn sample_report() -> SimReport {
        let config = SimConfig {
            max_insts: 1_000,
            ..SimConfig::default()
        };
        Simulation::builder(&tiny_program())
            .config(config)
            .build()
            .unwrap()
            .run()
    }

    /// A fresh per-test scratch directory under the system temp dir.
    pub(crate) fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ctcp-harness-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{temp_dir, tiny_program};
    use ctcp_sim::Strategy;

    fn grid(budgets: &[u64]) -> Vec<Job> {
        let program = tiny_program();
        let mut jobs = Vec::new();
        for &max_insts in budgets {
            for strategy in [
                Strategy::Baseline,
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ] {
                let config = SimConfig {
                    max_insts,
                    strategy,
                    ..SimConfig::default()
                };
                jobs.push(Job::new("tiny", Arc::clone(&program), config));
            }
        }
        jobs
    }

    fn render(reports: &[SimReport]) -> String {
        reports
            .iter()
            .map(|r| format!("{r:?}\n"))
            .collect::<String>()
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let jobs = grid(&[800, 1_600, 2_400]);
        let serial = Harness::new().jobs(1).progress(false).run(&jobs);
        let parallel = Harness::new().jobs(8).progress(false).run(&jobs);
        assert_eq!(render(&serial), render(&parallel));
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs = grid(&[600, 1_200]);
        let reports = Harness::new().jobs(4).progress(false).run(&jobs);
        assert_eq!(reports.len(), jobs.len());
        for (job, report) in jobs.iter().zip(&reports) {
            assert_eq!(report.strategy, job.config.strategy.name());
            assert_eq!(report.instructions, job.config.max_insts);
        }
    }

    #[test]
    fn duplicate_jobs_are_coalesced() {
        let mut jobs = grid(&[700]);
        jobs.extend(grid(&[700]));
        let mut h = Harness::new().jobs(4).progress(false);
        let reports = h.run(&jobs);
        let stats = h.last_batch();
        assert_eq!(stats.total, 6);
        assert_eq!(stats.simulated, 3);
        assert_eq!(stats.deduped, 3);
        assert_eq!(render(&reports[..3]), render(&reports[3..]));
    }

    #[test]
    fn warm_store_skips_all_simulation() {
        let dir = temp_dir("warm-store");
        let jobs = grid(&[900, 1_800]);

        let mut cold = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let first = cold.run(&jobs);
        assert_eq!(cold.last_batch().store_hits, 0);
        assert_eq!(cold.last_batch().simulated, jobs.len());

        let mut warm = Harness::new()
            .jobs(2)
            .progress(false)
            .with_store(ResultStore::open(&dir).unwrap());
        let second = warm.run(&jobs);
        assert_eq!(warm.last_batch().store_hits, jobs.len());
        assert_eq!(warm.last_batch().simulated, 0);
        assert_eq!(render(&first), render(&second));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_writes_one_line_per_simulated_job() {
        let dir = temp_dir("metrics-out");
        let path = dir.join("metrics.jsonl");
        let jobs = grid(&[500]); // three unique cells
        let mut h = Harness::new().jobs(2).progress(false).metrics_out(&path);
        let reports = h.run(&jobs);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        // Each line parses, names the workload, and its counters
        // reconcile with the matching report.
        for line in text.lines() {
            let v = ctcp_sim::json::Value::parse(line).unwrap();
            assert_eq!(v.get("workload").unwrap().as_str().unwrap(), "tiny");
            let strategy = v.get("strategy").unwrap().as_str().unwrap();
            let report = reports
                .iter()
                .find(|r| r.strategy == strategy)
                .expect("line matches a report");
            let counters = v.get("metrics").unwrap().get("counters").unwrap();
            assert_eq!(
                counters.get("retired").unwrap().as_u64().unwrap(),
                report.metrics.engine.retired,
                "{strategy}"
            );
            assert_eq!(
                counters.get("cycles").unwrap().as_u64().unwrap(),
                report.cycles,
                "{strategy}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_and_coalesced_jobs_emit_no_metrics_lines() {
        let dir = temp_dir("metrics-cached");
        let path = dir.join("metrics.jsonl");
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        let mut jobs = grid(&[650]);
        jobs.extend(grid(&[650])); // duplicates coalesce
        let mut h = Harness::new()
            .jobs(2)
            .progress(false)
            .metrics_out(&path)
            .with_store(ResultStore::open(&store_dir).unwrap());
        h.run(&jobs);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            3,
            "only the three simulated cells produce lines"
        );
        // A warm second batch simulates nothing and appends nothing.
        let mut warm = Harness::new()
            .jobs(2)
            .progress(false)
            .metrics_out(&path)
            .with_store(ResultStore::open(&store_dir).unwrap());
        warm.run(&jobs);
        assert_eq!(warm.last_batch().simulated, 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut h = Harness::new().progress(false);
        assert!(h.run(&[]).is_empty());
        assert_eq!(h.last_batch().total, 0);
    }

    #[test]
    fn jobs_zero_means_auto_parallelism() {
        assert!(Harness::new().effective_jobs() >= 1);
        assert_eq!(Harness::new().jobs(3).effective_jobs(), 3);
    }
}
