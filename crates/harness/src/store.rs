//! Content-addressed, append-only result store.
//!
//! Each finished job is recorded as one JSON line under a 64-bit
//! content key derived from the workload name and the full simulator
//! configuration (which includes the strategy and the instruction
//! budget). Re-running the same cell therefore finds the stored report
//! and skips simulation entirely.
//!
//! ## On-disk layout
//!
//! The store is a directory (by default `target/ctcp-results/`)
//! holding a single `results.jsonl`. Every line is an envelope:
//!
//! ```text
//! {"v":1,"key":"<16 hex digits>","workload":"gzip","report":{...}}
//! ```
//!
//! Lines are only ever appended; the newest line for a key wins at
//! load time. Unreadable lines (truncated writes, schema drift) are
//! skipped and simply count as cache misses — the store is a cache,
//! never an authority.

use ctcp_sim::json::Value;
use ctcp_sim::{SimConfig, SimReport};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Version salt folded into every key. Bump when the report schema or
/// the key derivation changes; old store contents then miss cleanly.
pub const STORE_FORMAT_VERSION: u32 = 1;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The content key of one job: FNV-1a 64 over the store version, the
/// workload name, and the `Debug` rendering of the configuration.
///
/// Hashing the `Debug` form means *every* config field participates —
/// adding a field to [`SimConfig`] automatically changes the keys of
/// affected cells, so stale results can never be returned for a config
/// the simulator has since learned to distinguish.
pub fn job_key(workload: &str, config: &SimConfig) -> u64 {
    let mut h = Fnv::new();
    h.write(&STORE_FORMAT_VERSION.to_le_bytes());
    h.write(workload.as_bytes());
    h.write(&[0]); // separator: name must not bleed into the config text
    h.write(format!("{config:?}").as_bytes());
    h.0
}

/// Cumulative counters for one store handle's lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Distinct keys currently resident.
    pub entries: usize,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports written this session.
    pub puts: u64,
}

/// A memoizing report store backed by one JSON-lines file.
pub struct ResultStore {
    path: PathBuf,
    file: File,
    map: HashMap<u64, SimReport>,
    stats: StoreStats,
}

impl ResultStore {
    /// The conventional store location, `target/ctcp-results`, relative
    /// to the current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("ctcp-results")
    }

    /// Opens (creating if needed) the store in `dir` and loads every
    /// decodable line into memory.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors (permissions, unwritable path) —
    /// malformed lines are skipped, not fatal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join("results.jsonl");
        let mut map = HashMap::new();
        if let Ok(existing) = File::open(&path) {
            for line in BufReader::new(existing).lines() {
                let line = line?;
                if let Some((key, report)) = decode_line(&line) {
                    map.insert(key, report);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let entries = map.len();
        Ok(ResultStore {
            path,
            file,
            map,
            stats: StoreStats {
                entries,
                ..StoreStats::default()
            },
        })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up `key`, counting the outcome.
    pub fn get(&mut self, key: u64) -> Option<SimReport> {
        match self.map.get(&key) {
            Some(r) => {
                self.stats.hits += 1;
                Some(r.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records `report` under `key`, appending one line and flushing so
    /// a killed run loses at most the in-flight report.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the in-memory copy is kept either
    /// way, so the current process still benefits.
    pub fn put(&mut self, key: u64, workload: &str, report: &SimReport) -> std::io::Result<()> {
        self.stats.puts += 1;
        self.map.insert(key, report.clone());
        self.stats.entries = self.map.len();
        let line = encode_line(key, workload, report);
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Counters for this handle.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

fn encode_line(key: u64, workload: &str, report: &SimReport) -> String {
    // The report is embedded as a parsed value, not a pre-rendered
    // string, so the envelope stays one well-formed JSON document.
    let report = Value::parse(&report.to_json()).expect("report encoding is valid JSON");
    Value::Obj(vec![
        ("v".into(), Value::u64(u64::from(STORE_FORMAT_VERSION))),
        ("key".into(), Value::str(&format!("{key:016x}"))),
        ("workload".into(), Value::str(workload)),
        ("report".into(), report),
    ])
    .render()
}

fn decode_line(line: &str) -> Option<(u64, SimReport)> {
    let v = Value::parse(line).ok()?;
    if v.get("v")?.as_u64()? != u64::from(STORE_FORMAT_VERSION) {
        return None;
    }
    let key = u64::from_str_radix(v.get("key")?.as_str()?, 16).ok()?;
    let report = SimReport::from_value(v.get("report")?).ok()?;
    Some((key, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_report, temp_dir};

    #[test]
    fn keys_separate_workload_config_and_budget() {
        let a = SimConfig::default();
        let b = SimConfig {
            max_insts: a.max_insts + 1,
            ..SimConfig::default()
        };
        assert_ne!(job_key("gzip", &a), job_key("gcc", &a));
        assert_ne!(job_key("gzip", &a), job_key("gzip", &b));
        assert_eq!(job_key("gzip", &a), job_key("gzip", &a));
    }

    #[test]
    fn put_then_get_round_trips_across_reopen() {
        let dir = temp_dir("store-roundtrip");
        let report = sample_report();
        let key = job_key("unit", &SimConfig::default());
        {
            let mut s = ResultStore::open(&dir).unwrap();
            assert!(s.get(key).is_none());
            s.put(key, "unit", &report).unwrap();
            assert_eq!(s.stats().puts, 1);
            assert_eq!(s.stats().misses, 1);
        }
        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1);
        let back = s.get(key).expect("persisted report");
        assert_eq!(s.stats().hits, 1);
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = temp_dir("store-corrupt");
        let key = job_key("unit", &SimConfig::default());
        {
            let mut s = ResultStore::open(&dir).unwrap();
            s.put(key, "unit", &sample_report()).unwrap();
        }
        // Simulate a truncated append and schema drift.
        let path = dir.join("results.jsonl");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"key\":\"00\",\"report\":{\"cycl\n");
        text.push_str("{\"v\":999,\"key\":\"0000000000000000\",\"report\":{}}\n");
        std::fs::write(&path, text).unwrap();

        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1);
        assert!(s.get(key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_line_wins_for_a_key() {
        let dir = temp_dir("store-newest");
        let key = 42u64;
        {
            let mut s = ResultStore::open(&dir).unwrap();
            let mut r = sample_report();
            s.put(key, "unit", &r).unwrap();
            r.cycles = 777;
            s.put(key, "unit", &r).unwrap();
        }
        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.get(key).unwrap().cycles, 777);
        std::fs::remove_dir_all(&dir).ok();
    }
}
