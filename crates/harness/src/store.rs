//! Content-addressed, append-only, self-healing, *sharded* result store.
//!
//! Each finished job is recorded as one JSON line under a 64-bit
//! content key derived from the workload name and the full simulator
//! configuration (which includes the strategy and the instruction
//! budget). Re-running the same cell therefore finds the stored report
//! and skips simulation entirely.
//!
//! ## On-disk layout
//!
//! The store is a directory (by default `target/ctcp-results/`) holding
//! [`STORE_SHARDS`] hash-partitioned JSON-lines files, `shard-0.jsonl`
//! … `shard-7.jsonl`; a key's envelope lives in the shard [`shard_of`]
//! names. Every line is an envelope whose last field is a CRC-32 of
//! everything before it:
//!
//! ```text
//! {"v":4,"key":"<16 hex digits>","workload":"gzip","report":{...},"crc":"<8 hex>"}
//! ```
//!
//! Lines are only ever appended; the newest line for a key wins at
//! load time, when every decodable line is folded into an in-memory
//! index keyed by the (already uniformly distributed) content key, so
//! cache probes are a single O(1) map lookup. The store is a cache,
//! never an authority — but it is a *self-healing* cache:
//!
//! * **corrupt** lines (unparseable JSON, CRC mismatch, malformed key,
//!   undecodable report) are moved to that shard's
//!   `shard-N.quarantine.jsonl` at open time and the shard is
//!   atomically rewritten without them, so one torn write from a killed
//!   run never degrades every later load, and the evidence survives
//!   for inspection;
//! * **stale** lines (older format versions) are kept in place and
//!   simply miss — their keys changed with the version salt anyway;
//! * appends take that shard's **advisory lock** (`shard-N.lock`) just
//!   long enough for one single-`write` append, so concurrent writers
//!   — harness worker pools, multiple service clients — only contend
//!   when they land on the same shard. Lock files are pure tokens and
//!   are removed best-effort when the last handle drops.
//!
//! ## Legacy single-file stores
//!
//! Earlier releases kept everything in one `results.jsonl` under one
//! whole-store lock. [`ResultStore::open`] and [`compact`] migrate such
//! a directory transparently: each legacy line is routed to the shard
//! its key names (corrupt lines go to `results.quarantine.jsonl`), then
//! the legacy file and its `results.lock` are deleted. [`verify`] is
//! read-only and scans the legacy file in place instead.
//!
//! Offline maintenance lives in [`verify`], [`compact`] and [`gc`],
//! surfaced as `ctcp store` subcommands. `compact` and `gc` work one
//! shard at a time under that shard's lock only, so a concurrent
//! reader or writer on another shard is never blocked.

use ctcp_sim::json::Value;
use ctcp_sim::{SimConfig, SimReport};
use ctcp_telemetry::failpoint;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// How long the read-only circuit breaker waits between disk
/// re-probes: while degraded, one append per interval is allowed to
/// touch the disk, and its success flips the store writable again.
const PROBE_INTERVAL: Duration = Duration::from_millis(500);

/// Version salt folded into every key. Bump when the report schema or
/// the envelope changes; old store contents then miss cleanly. History:
/// v2 added the CRC field; v3 added the optional per-cell attribution
/// payload (`report.attrib`), reusing the v2 CRC machinery unchanged;
/// v4 added the warmup/measure split (`SimConfig::warmup_insts`) — a
/// v3 line records a run whose whole budget was timed, which is not
/// the same cell as a warmed-up run, so v3 lines are classified
/// [`Line::Stale`] and simply miss.
pub const STORE_FORMAT_VERSION: u32 = 4;

/// Number of hash-partitioned shard files in a store directory. Eight
/// keeps per-shard lock contention negligible at the harness's worker
/// counts while leaving the directory human-inspectable.
pub const STORE_SHARDS: usize = 8;

/// The shard holding `key`'s envelope. Folds the high half into the
/// low so all 64 key bits participate, then reduces modulo
/// [`STORE_SHARDS`].
pub fn shard_of(key: u64) -> usize {
    ((key ^ (key >> 32)) % STORE_SHARDS as u64) as usize
}

/// Store file of the legacy single-file layout, migrated on open.
const LEGACY_STORE_FILE: &str = "results.jsonl";
/// Quarantine target for corrupt lines found during legacy migration.
const LEGACY_QUARANTINE_FILE: &str = "results.quarantine.jsonl";
/// Whole-store lock of the legacy layout, deleted with the store file.
const LEGACY_LOCK_FILE: &str = "results.lock";

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.jsonl"))
}

fn shard_quarantine_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.quarantine.jsonl"))
}

fn shard_lock_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.lock"))
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The content key of one job: FNV-1a 64 over the store version, the
/// workload name, and the `Debug` rendering of the configuration.
///
/// Hashing the `Debug` form means *every* config field participates —
/// adding a field to [`SimConfig`] automatically changes the keys of
/// affected cells, so stale results can never be returned for a config
/// the simulator has since learned to distinguish.
pub fn job_key(workload: &str, config: &SimConfig) -> u64 {
    let mut h = Fnv::new();
    h.write(&STORE_FORMAT_VERSION.to_le_bytes());
    h.write(workload.as_bytes());
    h.write(&[0]); // separator: name must not bleed into the config text
    h.write(format!("{config:?}").as_bytes());
    h.0
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the checksum zlib and PNG use. Hand-rolled because the build is
/// fully offline; the 256-entry table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Pass-through hasher for the in-memory index. Store keys are already
/// FNV-1a 64 outputs — uniformly distributed by construction — so
/// rehashing them on every probe buys nothing.
#[derive(Debug, Default, Clone, Copy)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    /// Correctness fallback only; `HashMap<u64, _>` uses `write_u64`.
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// The in-memory index: content key → newest decoded report.
type KeyIndex = HashMap<u64, SimReport, std::hash::BuildHasherDefault<KeyHasher>>;

/// Cumulative counters for one store handle's lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Distinct keys currently resident.
    pub entries: usize,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports written this session.
    pub puts: u64,
    /// Corrupt lines moved to quarantine files when this handle
    /// opened the store.
    pub quarantined: u64,
    /// Stale shard lock tokens (stamped by a now-dead owner, lock
    /// free) reclaimed when this handle opened the store.
    pub reclaimed: u64,
}

/// One open shard: its slice of the in-memory index behind a
/// reader-writer lock, the append handle behind a mutex, and the
/// on-disk advisory lock token. The index partition matches the
/// on-disk partitioning ([`shard_of`]), so concurrent probes of
/// different shards never touch the same lock, and a probe of any
/// shard never waits on an in-flight append (appends only take the
/// index's write lock for the brief in-memory insert).
struct ShardState {
    index: RwLock<KeyIndex>,
    append: Mutex<File>,
    lock: File,
    lock_path: PathBuf,
}

/// A memoizing report store backed by hash-partitioned JSON-lines
/// shard files with a sharded in-memory key index.
///
/// The handle is cheaply cloneable — clones share one open store
/// (`Arc` inside), so a daemon can hand every worker and every request
/// the same warm index. `get` and `put` take `&self`: readers probe
/// the key's shard under a shared read lock (the cache fast path),
/// writers briefly take that one shard's write lock plus its append
/// mutex, and traffic on different shards proceeds in parallel.
pub struct ResultStore {
    inner: Arc<StoreInner>,
}

impl Clone for ResultStore {
    fn clone(&self) -> ResultStore {
        ResultStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct StoreInner {
    dir: PathBuf,
    shards: Vec<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    /// Set once at open time, constant afterwards.
    quarantined: u64,
    /// Stale lock tokens reclaimed at open time, constant afterwards.
    reclaimed: u64,
    /// Degraded mode: a failed append tripped the circuit breaker, so
    /// appends short-circuit (the in-memory index still serves) until
    /// a periodic probe write succeeds again.
    read_only: AtomicBool,
    /// When the breaker last let an append probe the disk.
    probe_at: Mutex<Option<Instant>>,
}

impl ResultStore {
    /// The conventional store location, `target/ctcp-results`, relative
    /// to the current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("ctcp-results")
    }

    /// Opens (creating if needed) the store in `dir`, migrates any
    /// legacy single-file store into the sharded layout, loads every
    /// decodable line into the in-memory index, and self-heals:
    /// corrupt lines are appended to that shard's quarantine file and
    /// the shard is atomically rewritten without them.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors (permissions, unwritable path) —
    /// malformed lines are quarantined, not fatal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut quarantined = migrate_legacy(dir)?;
        let mut reclaimed = 0u64;
        let mut maps: Vec<KeyIndex> = (0..STORE_SHARDS).map(|_| KeyIndex::default()).collect();
        let mut shards = Vec::with_capacity(STORE_SHARDS);
        for i in 0..STORE_SHARDS {
            let path = shard_path(dir, i);
            let lock_path = shard_lock_path(dir, i);
            let (lock, was_stale) = open_lock(&lock_path)?;
            reclaimed += u64::from(was_stale);
            // First pass, lock-free: the common case is a clean shard,
            // and a clean open must never block behind maintenance or
            // another handle's append on this shard.
            if !scan_shard(&path, &mut maps)?.1.is_empty() {
                // Damage found. Re-scan *under the shard lock* so the
                // heal rewrite cannot race a concurrent append (a line
                // landing between a lock-free scan and the rewrite
                // would otherwise be silently dropped).
                lock.lock()?;
                let healed = (|| {
                    let (clean, corrupt) = scan_shard(&path, &mut maps)?;
                    quarantined += corrupt.len() as u64;
                    append_lines(&shard_quarantine_path(dir, i), &corrupt)?;
                    atomic_rewrite(&path, &clean)
                })();
                let _ = lock.unlock();
                healed?;
            }
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            shards.push((file, lock, lock_path));
        }
        // Index partitions are assembled after every file is scanned:
        // a line whose key routes elsewhere (hand-edited or moved
        // shard file) still lands in the partition `get` will probe.
        let shards = shards
            .into_iter()
            .zip(maps)
            .map(|((file, lock, lock_path), map)| ShardState {
                index: RwLock::new(map),
                append: Mutex::new(file),
                lock,
                lock_path,
            })
            .collect();
        Ok(ResultStore {
            inner: Arc::new(StoreInner {
                dir: dir.to_path_buf(),
                shards,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                puts: AtomicU64::new(0),
                quarantined,
                reclaimed,
                read_only: AtomicBool::new(false),
                probe_at: Mutex::new(None),
            }),
        })
    }

    /// The store directory this handle is backed by.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Looks up `key` in the in-memory index, counting the outcome.
    /// Readers only take the key's shard-index read lock — never the
    /// append path — so concurrent cache probes proceed in parallel
    /// with each other and with writers on other shards.
    pub fn get(&self, key: u64) -> Option<SimReport> {
        let shard = &self.inner.shards[shard_of(key)];
        let found = shard
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        match found {
            Some(r) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records `report` under `key`: the in-memory insert under that
    /// shard's index write lock, then one line appended to the key's
    /// shard file in a single write under its append mutex and on-disk
    /// advisory lock, then flushed — so a killed run loses at most the
    /// in-flight report and concurrent writers (in this process or
    /// another) never interleave bytes within a line.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the in-memory copy is kept either
    /// way, so the current process still benefits. A failure also
    /// trips the read-only circuit breaker: until a later append
    /// re-probes the disk successfully (at most one probe per
    /// [`PROBE_INTERVAL`]), further puts fail fast without touching
    /// the disk — degraded, not crashed.
    pub fn put(&self, key: u64, workload: &str, report: &SimReport) -> std::io::Result<()> {
        self.inner.puts.fetch_add(1, Ordering::Relaxed);
        let shard = &self.inner.shards[shard_of(key)];
        shard
            .index
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, report.clone());
        if self.inner.read_only.load(Ordering::Acquire) && !self.probe_due() {
            return Err(std::io::Error::other(
                "store is read-only (degraded after a write failure)",
            ));
        }
        let mut line = encode_line(key, workload, report);
        line.push('\n');
        let mut file = shard.append.lock().unwrap_or_else(PoisonError::into_inner);
        // Fault injection: the `store-truncate` fail point models a
        // crash mid-append — half the bytes land, no newline. An
        // argument restricts the tear to that one shard index, so a
        // test can wound a single shard while the others stay clean.
        // The next open must quarantine the torn line, not choke on it.
        if truncate_armed_for(shard_of(key)) {
            file.write_all(&line.as_bytes()[..line.len() / 2])?;
            return file.flush();
        }
        // The `disk-full` fail point makes every append fail the way a
        // full filesystem would, exercising the degradation ladder.
        let appended = if failpoint::is_active("disk-full") {
            Err(std::io::Error::other(
                "no space left on device (fail point)",
            ))
        } else {
            shard.lock.lock()?;
            let r = file.write_all(line.as_bytes()).and_then(|()| file.flush());
            let _ = shard.lock.unlock();
            r
        };
        match appended {
            Ok(()) => {
                if self.inner.read_only.swap(false, Ordering::AcqRel) {
                    *self
                        .inner
                        .probe_at
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = None;
                }
                Ok(())
            }
            Err(e) => {
                // Trip (or re-arm) the breaker and start the probe
                // clock: the next disk touch is one interval away.
                self.inner.read_only.store(true, Ordering::Release);
                *self
                    .inner
                    .probe_at
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
                Err(e)
            }
        }
    }

    /// True while the read-only circuit breaker is tripped: appends
    /// fail fast, lookups still serve. The sweep service refuses new
    /// uncached work with 503 + `Retry-After` while this holds.
    pub fn read_only(&self) -> bool {
        self.inner.read_only.load(Ordering::Acquire)
    }

    /// Whether a degraded-mode append may probe the disk now; stamps
    /// the probe time so at most one probe runs per interval.
    fn probe_due(&self) -> bool {
        let mut at = self
            .inner
            .probe_at
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match *at {
            Some(t) if t.elapsed() < PROBE_INTERVAL => false,
            _ => {
                *at = Some(Instant::now());
                true
            }
        }
    }

    /// Counters for this shared store (cumulative across every clone
    /// of the handle). `entries` is computed from the live index.
    pub fn stats(&self) -> StoreStats {
        let entries = self
            .inner
            .shards
            .iter()
            .map(|s| s.index.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum();
        StoreStats {
            entries,
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            puts: self.inner.puts.load(Ordering::Relaxed),
            quarantined: self.inner.quarantined,
            reclaimed: self.inner.reclaimed,
        }
    }

    /// Live index size of every shard, in shard order — the per-shard
    /// breakdown of [`StoreStats::entries`], exposed as operator
    /// gauges so a skewed shard is visible without reading files.
    pub fn shard_entries(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.index.read().unwrap_or_else(PoisonError::into_inner).len())
            .collect()
    }
}

impl Drop for StoreInner {
    /// Best-effort lock-file cleanup, run when the last clone of the
    /// handle drops. A shard lock file is a pure token, so the last
    /// handle out removes it; `try_lock` skips the window where
    /// another process's handle is mid-append (that handle's own drop
    /// will collect the file instead).
    fn drop(&mut self) {
        for s in &self.shards {
            if s.lock.try_lock().is_ok() {
                let _ = std::fs::remove_file(&s.lock_path);
                let _ = s.lock.unlock();
            }
        }
    }
}

/// True when the `store-truncate` fail point should tear writes to
/// `shard`: armed bare it tears every shard, armed with a numeric
/// argument it tears only that shard index.
fn truncate_armed_for(shard: usize) -> bool {
    match failpoint::arg("store-truncate") {
        None => false,
        Some(a) if a.is_empty() => true,
        Some(a) => a.parse::<usize>().ok() == Some(shard),
    }
}

/// Reads one shard file, folding valid reports into the index
/// partition their *key* routes to (newest line wins) and returning
/// its `(clean, corrupt)` lines. A missing shard scans as empty.
fn scan_shard(path: &Path, maps: &mut [KeyIndex]) -> std::io::Result<(Vec<String>, Vec<String>)> {
    let mut clean: Vec<String> = Vec::new();
    let mut corrupt: Vec<String> = Vec::new();
    if let Ok(existing) = File::open(path) {
        for line in BufReader::new(existing).lines() {
            let line = line?;
            match classify_line(&line) {
                Line::Valid { key, report } => {
                    maps[shard_of(key)].insert(key, *report);
                    clean.push(line);
                }
                Line::Stale => clean.push(line),
                Line::Blank => {}
                Line::Corrupt => corrupt.push(line),
            }
        }
    }
    Ok((clean, corrupt))
}

/// Opens (creating if needed) a lock-token file, stamping ownership.
///
/// The token carries `<owner-pid> <unix-seconds>` purely as forensic
/// metadata — the advisory lock is the real mutual exclusion, and the
/// OS releases it when the owner dies, SIGKILL included. What a kill
/// leaves behind is the *file*, stamped by a dead pid: if the lock is
/// free, this open reclaims it (restamps with our pid and the current
/// time) and reports whether the previous stamp named a dead owner,
/// so maintenance never wedges on a tombstone and `StoreStats` can
/// count the reclamation. A held lock is left untouched.
fn open_lock(path: &Path) -> std::io::Result<(File, bool)> {
    let mut file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false) // never clobber a live owner's stamp unlocked
        .open(path)?;
    let mut was_stale = false;
    if file.try_lock().is_ok() {
        let mut prev = String::new();
        let _ = file.read_to_string(&mut prev);
        if let Some(pid) = prev
            .split_whitespace()
            .next()
            .and_then(|s| s.parse::<u32>().ok())
        {
            was_stale = pid != std::process::id() && !pid_alive(pid);
        }
        let epoch = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let stamp = format!("{} {epoch}\n", std::process::id());
        let restamped = file
            .set_len(0)
            .and_then(|()| file.seek(SeekFrom::Start(0)).map(|_| ()))
            .and_then(|()| file.write_all(stamp.as_bytes()))
            .and_then(|()| file.flush());
        let _ = file.unlock();
        restamped?;
    }
    Ok((file, was_stale))
}

/// Best-effort liveness check for a stamped lock owner.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        // No portable probe; a free lock is evidence enough — treat
        // the owner as gone so reclamation still reports.
        false
    }
}

/// Appends `lines` to `path` in one write.
fn append_lines(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        buf.push_str(line);
        buf.push('\n');
    }
    f.write_all(buf.as_bytes())?;
    f.flush()
}

/// Routes a legacy single-file `results.jsonl` into the sharded
/// layout: valid lines go to the shard their key names, stale lines
/// follow their declared key (preserved in place, as before),
/// undecodable lines are quarantined to `results.quarantine.jsonl`.
/// The legacy store file and its whole-store lock are then deleted.
/// Returns the number of lines quarantined; a directory with no legacy
/// file is a no-op.
fn migrate_legacy(dir: &Path) -> std::io::Result<u64> {
    let legacy = dir.join(LEGACY_STORE_FILE);
    let Ok(existing) = File::open(&legacy) else {
        return Ok(0);
    };
    let mut buckets: Vec<Vec<String>> = (0..STORE_SHARDS).map(|_| Vec::new()).collect();
    let mut corrupt: Vec<String> = Vec::new();
    for line in BufReader::new(existing).lines() {
        let line = line?;
        match classify_line(&line) {
            Line::Valid { key, .. } => buckets[shard_of(key)].push(line),
            Line::Stale => match declared_key(&line) {
                Some(key) => buckets[shard_of(key)].push(line),
                None => corrupt.push(line),
            },
            Line::Blank => {}
            Line::Corrupt => corrupt.push(line),
        }
    }
    let quarantined = corrupt.len() as u64;
    if !corrupt.is_empty() {
        append_lines(&dir.join(LEGACY_QUARANTINE_FILE), &corrupt)?;
    }
    for (i, lines) in buckets.iter().enumerate() {
        if !lines.is_empty() {
            append_lines(&shard_path(dir, i), lines)?;
        }
    }
    std::fs::remove_file(&legacy)?;
    let _ = std::fs::remove_file(dir.join(LEGACY_LOCK_FILE));
    Ok(quarantined)
}

/// The key a well-formed envelope *claims*, without validating it —
/// how stale (old-version) lines are routed to a shard.
fn declared_key(line: &str) -> Option<u64> {
    let v = Value::parse(line).ok()?;
    let hex = v.get("key")?.as_str()?;
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Atomically replaces `path` with `lines` via a temp file + rename,
/// so a crash mid-rewrite leaves either the old file or the new one —
/// never a half-written store.
pub(crate) fn atomic_rewrite(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = File::create(&tmp)?;
        for line in lines {
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn encode_line(key: u64, workload: &str, report: &SimReport) -> String {
    // The report is embedded as a parsed value, not a pre-rendered
    // string, so the envelope stays one well-formed JSON document.
    let report = Value::parse(&report.to_json()).expect("report encoding is valid JSON");
    let mut body = Value::Obj(vec![
        ("v".into(), Value::u64(u64::from(STORE_FORMAT_VERSION))),
        ("key".into(), Value::str(&format!("{key:016x}"))),
        ("workload".into(), Value::str(workload)),
        ("report".into(), report),
    ])
    .render();
    // The CRC covers the raw bytes before its own field, so a verifier
    // works on the line as written — no re-rendering, no float drift.
    assert_eq!(body.pop(), Some('}'));
    let crc = crc32(body.as_bytes());
    body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
    body
}

/// What one raw store line turned out to be.
enum Line {
    /// A current-version envelope with a matching checksum. The report
    /// is boxed so the common no-payload variants stay enum-cheap.
    Valid {
        /// The content key the line stores.
        key: u64,
        /// The decoded report.
        report: Box<SimReport>,
    },
    /// Well-formed but from an older format version: skipped, kept.
    Stale,
    /// Whitespace only (e.g. an editor's trailing newline): ignored.
    Blank,
    /// Torn, bit-rotted or malformed: quarantined.
    Corrupt,
}

/// Splits a v2 line into (bytes-the-CRC-covers, stored CRC).
pub(crate) fn split_crc(line: &str) -> Option<(&str, u32)> {
    let tail = line.strip_suffix('}')?;
    // The envelope's own crc field is rendered last, so the final
    // occurrence is always it — even if the report contained the text.
    let idx = tail.rfind(",\"crc\":\"")?;
    let hex = tail[idx..].strip_prefix(",\"crc\":\"")?.strip_suffix('"')?;
    if hex.len() != 8 {
        return None;
    }
    Some((&tail[..idx], u32::from_str_radix(hex, 16).ok()?))
}

fn classify_line(line: &str) -> Line {
    if line.trim().is_empty() {
        return Line::Blank;
    }
    let Ok(v) = Value::parse(line) else {
        return Line::Corrupt;
    };
    let Some(ver) = v.get("v").and_then(Value::as_u64) else {
        return Line::Corrupt;
    };
    if ver != u64::from(STORE_FORMAT_VERSION) {
        return Line::Stale;
    }
    let Some((covered, stored)) = split_crc(line) else {
        return Line::Corrupt;
    };
    if crc32(covered.as_bytes()) != stored {
        return Line::Corrupt;
    }
    let Some(key) = v
        .get("key")
        .and_then(Value::as_str)
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return Line::Corrupt;
    };
    let Some(report) = v.get("report").and_then(|r| SimReport::from_value(r).ok()) else {
        return Line::Corrupt;
    };
    Line::Valid {
        key,
        report: Box::new(report),
    }
}

/// What [`verify`] found in a store directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Non-blank lines scanned.
    pub lines: usize,
    /// Current-version lines with matching checksums.
    pub valid: usize,
    /// Well-formed lines from older format versions.
    pub stale: usize,
    /// Torn, bit-rotted or malformed lines.
    pub corrupt: usize,
    /// Distinct keys the valid lines resolve to.
    pub entries: usize,
}

/// Read-only integrity scan of the store in `dir`: every shard file,
/// plus any unmigrated legacy `results.jsonl` in place. Touches
/// nothing — no quarantine, no healing, no migration, no locks — so it
/// is safe to run concurrently with a sweep.
///
/// # Errors
///
/// Propagates real I/O errors; a missing store verifies as empty.
pub fn verify(dir: impl AsRef<Path>) -> std::io::Result<VerifyReport> {
    let dir = dir.as_ref();
    let mut rep = VerifyReport::default();
    let mut keys = std::collections::HashSet::new();
    let mut paths = vec![dir.join(LEGACY_STORE_FILE)];
    paths.extend((0..STORE_SHARDS).map(|i| shard_path(dir, i)));
    for path in paths {
        let Ok(existing) = File::open(&path) else {
            continue;
        };
        for line in BufReader::new(existing).lines() {
            match classify_line(&line?) {
                Line::Valid { key, .. } => {
                    rep.lines += 1;
                    rep.valid += 1;
                    keys.insert(key);
                }
                Line::Stale => {
                    rep.lines += 1;
                    rep.stale += 1;
                }
                Line::Blank => {}
                Line::Corrupt => {
                    rep.lines += 1;
                    rep.corrupt += 1;
                }
            }
        }
    }
    rep.entries = keys.len();
    Ok(rep)
}

/// What [`compact`] did to a store directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Lines kept (one per distinct key — the newest).
    pub kept: usize,
    /// Valid lines dropped because a newer line held the same key.
    pub superseded: usize,
    /// Old-format lines dropped (their keys can never hit again).
    pub stale: usize,
    /// Corrupt lines moved to quarantine files.
    pub quarantined: usize,
}

/// Rewrites the store in `dir` down to one line per key — the newest —
/// dropping stale-version lines and quarantining corrupt ones. A
/// legacy single-file store is migrated into the sharded layout first,
/// then each shard is processed independently under its own advisory
/// lock, so a concurrent reader or writer on another shard is never
/// blocked. Each rewrite is atomic (temp file + rename); surviving
/// lines keep their original bytes and relative order.
///
/// # Errors
///
/// Propagates real I/O errors; a missing store compacts to empty.
pub fn compact(dir: impl AsRef<Path>) -> std::io::Result<CompactReport> {
    let dir = dir.as_ref();
    let mut rep = CompactReport::default();
    rep.quarantined += migrate_legacy(dir)? as usize;
    for i in 0..STORE_SHARDS {
        compact_shard(dir, i, &mut rep)?;
    }
    Ok(rep)
}

/// Compacts one shard under its own lock (held across the read and the
/// rewrite, so a concurrent append cannot fall between them). The lock
/// file is removed afterwards if no other handle holds it.
fn compact_shard(dir: &Path, shard: usize, rep: &mut CompactReport) -> std::io::Result<()> {
    let path = shard_path(dir, shard);
    if !path.exists() {
        return Ok(());
    }
    let lock_path = shard_lock_path(dir, shard);
    let (lock, _) = open_lock(&lock_path)?;
    lock.lock()?;
    let compacted = compact_shard_locked(dir, shard, &path, rep);
    let _ = lock.unlock();
    // Token cleanup, same protocol as `ResultStore::drop`.
    if lock.try_lock().is_ok() {
        let _ = std::fs::remove_file(&lock_path);
        let _ = lock.unlock();
    }
    compacted
}

fn compact_shard_locked(
    dir: &Path,
    shard: usize,
    path: &Path,
    rep: &mut CompactReport,
) -> std::io::Result<()> {
    let Ok(existing) = File::open(path) else {
        return Ok(());
    };
    // (key, raw line) per valid line, in file order; last wins.
    let mut valid: Vec<(u64, String)> = Vec::new();
    let mut corrupt: Vec<String> = Vec::new();
    let mut stale = 0usize;
    for line in BufReader::new(existing).lines() {
        let line = line?;
        match classify_line(&line) {
            Line::Valid { key, .. } => valid.push((key, line)),
            Line::Stale => stale += 1,
            Line::Blank => {}
            Line::Corrupt => corrupt.push(line),
        }
    }
    rep.stale += stale;
    rep.quarantined += corrupt.len();
    if !corrupt.is_empty() {
        append_lines(&shard_quarantine_path(dir, shard), &corrupt)?;
    }
    // Keep only each key's final occurrence, preserving its position.
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (i, (key, _)) in valid.iter().enumerate() {
        last.insert(*key, i);
    }
    let kept: Vec<String> = valid
        .iter()
        .enumerate()
        .filter(|(i, (key, _))| last[key] == *i)
        .map(|(_, (_, line))| line.clone())
        .collect();
    rep.kept += kept.len();
    rep.superseded += valid.len() - kept.len();
    atomic_rewrite(path, &kept)
}

/// What [`gc`] reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// The compaction that ran first.
    pub compact: CompactReport,
    /// Bytes of quarantined evidence deleted.
    pub quarantine_bytes: u64,
}

/// Full garbage collection: [`compact`], then delete every quarantine
/// file (per-shard and legacy) — use once quarantined lines have been
/// inspected (or given up on).
///
/// # Errors
///
/// Propagates real I/O errors from either step.
pub fn gc(dir: impl AsRef<Path>) -> std::io::Result<GcReport> {
    let dir = dir.as_ref();
    let compact = compact(dir)?;
    let mut quarantine_bytes = 0u64;
    let mut qpaths = vec![dir.join(LEGACY_QUARANTINE_FILE)];
    qpaths.extend((0..STORE_SHARDS).map(|i| shard_quarantine_path(dir, i)));
    for qpath in qpaths {
        if let Ok(m) = std::fs::metadata(&qpath) {
            std::fs::remove_file(&qpath)?;
            quarantine_bytes += m.len();
        }
    }
    Ok(GcReport {
        compact,
        quarantine_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_report, temp_dir};

    fn legacy_path(dir: &Path) -> PathBuf {
        dir.join(LEGACY_STORE_FILE)
    }

    fn legacy_quarantine(dir: &Path) -> PathBuf {
        dir.join(LEGACY_QUARANTINE_FILE)
    }

    /// A syntactically perfect envelope whose only defect is the one
    /// under test — so each test isolates one classification rule.
    fn forged_line(key_field: &str) -> String {
        let mut body = format!(
            "{{\"v\":{STORE_FORMAT_VERSION},\"key\":\"{key_field}\",\
             \"workload\":\"unit\",\"report\":{{}}"
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        body
    }

    #[test]
    fn keys_separate_workload_config_and_budget() {
        let a = SimConfig::default();
        let b = SimConfig {
            max_insts: a.max_insts + 1,
            ..SimConfig::default()
        };
        assert_ne!(job_key("gzip", &a), job_key("gcc", &a));
        assert_ne!(job_key("gzip", &a), job_key("gzip", &b));
        assert_eq!(job_key("gzip", &a), job_key("gzip", &a));
    }

    #[test]
    fn keys_separate_warmup_from_measurement_budget() {
        // A warmed-up run and an all-timed run of the same total budget
        // are different cells: the key (via the config's Debug form)
        // and the shard routing must both see the split.
        let cold = SimConfig {
            max_insts: 10_000,
            ..SimConfig::default()
        };
        let warmed = SimConfig {
            warmup_insts: 5_000,
            ..cold
        };
        let (ka, kb) = (job_key("gzip", &cold), job_key("gzip", &warmed));
        assert_ne!(ka, kb);
        assert!(shard_of(ka) < STORE_SHARDS && shard_of(kb) < STORE_SHARDS);
    }

    #[test]
    fn v3_pre_warmup_lines_are_stale_not_corrupt() {
        // A v3 (pre warmup/measure split) envelope, checksum and all:
        // it must miss as stale — its timing covered the whole budget.
        let mut body = String::from(
            "{\"v\":3,\"key\":\"000000000000002a\",\"workload\":\"unit\",\"report\":{}",
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        assert!(matches!(classify_line(&body), Line::Stale));
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value: crc32(b"123456789).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shard_of_is_total_and_uses_the_high_half() {
        for key in 0..256u64 {
            assert!(shard_of(key) < STORE_SHARDS);
        }
        // Two keys differing only above bit 32 must be able to land in
        // different shards — the fold makes the high half matter.
        assert_ne!(shard_of(0), shard_of(1 << 32));
    }

    #[test]
    fn envelope_carries_version_and_checksum() {
        let line = encode_line(0xabcd, "unit", &sample_report());
        assert!(line.starts_with(&format!("{{\"v\":{STORE_FORMAT_VERSION},")));
        let (covered, stored) = split_crc(&line).expect("crc field present");
        assert_eq!(crc32(covered.as_bytes()), stored);
        assert!(matches!(
            classify_line(&line),
            Line::Valid { key: 0xabcd, .. }
        ));
    }

    #[test]
    fn put_then_get_round_trips_across_reopen() {
        let dir = temp_dir("store-roundtrip");
        let report = sample_report();
        let key = job_key("unit", &SimConfig::default());
        {
            let s = ResultStore::open(&dir).unwrap();
            assert!(s.get(key).is_none());
            s.put(key, "unit", &report).unwrap();
            assert_eq!(s.stats().puts, 1);
            assert_eq!(s.stats().misses, 1);
        }
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.stats().quarantined, 0);
        let back = s.get(key).expect("persisted report");
        assert_eq!(s.stats().hits, 1);
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_every_handle_removes_lock_tokens() {
        let dir = temp_dir("store-lock-cleanup");
        {
            let s = ResultStore::open(&dir).unwrap();
            s.put(7, "unit", &sample_report()).unwrap();
        }
        for i in 0..STORE_SHARDS {
            assert!(
                !shard_lock_path(&dir, i).exists(),
                "lock token {i} must be cleaned up on drop"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_tokens_from_a_dead_owner_are_reclaimed() {
        let dir = temp_dir("store-stale-locks");
        // A SIGKILLed daemon leaves its stamped lock tokens behind; the
        // OS released the advisory locks with the process, so the next
        // open must reclaim (restamp) them rather than wedge.
        for i in 0..STORE_SHARDS {
            std::fs::write(shard_lock_path(&dir, i), "999999999 0\n").unwrap();
        }
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().reclaimed, STORE_SHARDS as u64);
        let stamp = std::fs::read_to_string(shard_lock_path(&dir, 0)).unwrap();
        assert!(
            stamp.starts_with(&format!("{} ", std::process::id())),
            "token restamped with the live owner: {stamp:?}"
        );
        // The store is fully functional behind reclaimed tokens.
        s.put(7, "unit", &sample_report()).unwrap();
        drop(s);
        for i in 0..STORE_SHARDS {
            assert!(!shard_lock_path(&dir, i).exists(), "token {i} cleaned up");
        }
        // A healthy reopen (our own fresh tokens) reclaims nothing.
        let s = ResultStore::open(&dir).unwrap();
        drop(s);
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().reclaimed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_trips_read_only_and_a_probe_recovers() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        let dir = temp_dir("store-read-only");
        let s = ResultStore::open(&dir).unwrap();
        assert!(!s.read_only());
        ctcp_telemetry::failpoint::set(Some("disk-full"));
        assert!(s.put(1, "unit", &sample_report()).is_err());
        assert!(s.read_only(), "failed append trips the breaker");
        // Degraded puts fail fast without touching the disk, but the
        // in-memory copy still serves this process.
        let e = s.put(2, "unit", &sample_report()).unwrap_err();
        assert!(e.to_string().contains("read-only"), "{e}");
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_some());
        // Disk healed: after the probe interval one append re-probes,
        // succeeds, and flips the store writable again.
        ctcp_telemetry::failpoint::set(None);
        std::thread::sleep(PROBE_INTERVAL + Duration::from_millis(50));
        s.put(3, "unit", &sample_report()).unwrap();
        assert!(!s.read_only(), "successful probe closes the breaker");
        s.put(4, "unit", &sample_report()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_final_line_is_quarantined_and_healed() {
        let dir = temp_dir("store-truncated");
        let key = job_key("unit", &SimConfig::default());
        {
            let s = ResultStore::open(&dir).unwrap();
            s.put(key, "unit", &sample_report()).unwrap();
        }
        // Crash mid-append: the last line of key 99's shard stops half
        // way, no newline.
        let torn = {
            let full = encode_line(99, "unit", &sample_report());
            full[..full.len() / 2].to_string()
        };
        let shard = shard_path(&dir, shard_of(99));
        let mut text = std::fs::read_to_string(&shard).unwrap_or_default();
        text.push_str(&torn);
        std::fs::write(&shard, &text).unwrap();

        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1, "good line survives");
        assert_eq!(s.stats().quarantined, 1);
        assert!(s.get(key).is_some());
        assert!(s.get(99).is_none(), "torn line must miss");
        drop(s);
        // Healing: the torn line moved to its shard's quarantine, and
        // the shard itself is clean again.
        let q = std::fs::read_to_string(shard_quarantine_path(&dir, shard_of(99))).unwrap();
        assert_eq!(q, format!("{torn}\n"));
        let healed = verify(&dir).unwrap();
        assert_eq!((healed.valid, healed.corrupt), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_hex_key_and_crc_mismatch_are_corrupt() {
        // A non-hex key behind a *valid* checksum: the key rule itself
        // must reject it.
        assert!(matches!(
            classify_line(&forged_line("zzzzzzzzzzzzzzzz")),
            Line::Corrupt
        ));
        // Wrong-length key, also behind a valid checksum.
        assert!(matches!(classify_line(&forged_line("00ff")), Line::Corrupt));
        // A single flipped byte in an otherwise perfect line.
        let line = encode_line(7, "unit", &sample_report()).replace("\"workload\"", "\"workloaD\"");
        assert!(matches!(classify_line(&line), Line::Corrupt));
    }

    #[test]
    fn legacy_single_file_store_migrates_into_shards() {
        let dir = temp_dir("store-migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // A legacy directory: valid current-version lines in one
        // results.jsonl plus
        // the old whole-store lock token.
        let keys = [1u64, 2, 1 << 32, 0xdead_beef_cafe];
        let mut text = String::new();
        for &k in &keys {
            text.push_str(&encode_line(k, "unit", &sample_report()));
            text.push('\n');
        }
        std::fs::write(legacy_path(&dir), &text).unwrap();
        std::fs::write(dir.join(LEGACY_LOCK_FILE), "").unwrap();

        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, keys.len());
        assert_eq!(s.stats().quarantined, 0);
        for &k in &keys {
            assert!(s.get(k).is_some(), "key {k:#x} must survive migration");
        }
        drop(s);
        assert!(!legacy_path(&dir).exists(), "legacy store file removed");
        assert!(
            !dir.join(LEGACY_LOCK_FILE).exists(),
            "legacy lock removed with it"
        );
        for &k in &keys {
            let text = std::fs::read_to_string(shard_path(&dir, shard_of(k))).unwrap();
            assert!(
                text.contains(&format!("{k:016x}")),
                "key {k:#x} routed to its shard"
            );
        }
        // Migration is idempotent: a second open sees a sharded store.
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, keys.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_version_lines_miss_without_quarantine() {
        let dir = temp_dir("store-mixed");
        let key = job_key("unit", &SimConfig::default());
        // A v1-era line (no CRC) in a legacy store: well-formed, just
        // old. Migration routes it by its declared key.
        let old = "{\"v\":1,\"key\":\"000000000000002a\",\"workload\":\"unit\",\"report\":{}}";
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(legacy_path(&dir), format!("{old}\n")).unwrap();
        {
            let s = ResultStore::open(&dir).unwrap();
            assert_eq!(s.stats().entries, 0, "stale line must miss");
            assert_eq!(s.stats().quarantined, 0, "stale is not corrupt");
            assert!(s.get(0x2a).is_none());
            s.put(key, "unit", &sample_report()).unwrap();
        }
        // The stale line is preserved — now in the shard its declared
        // key (0x2a) routes to.
        let text = std::fs::read_to_string(shard_path(&dir, shard_of(0x2a))).unwrap();
        assert!(text.starts_with(old));
        let rep = verify(&dir).unwrap();
        assert_eq!((rep.valid, rep.stale, rep.corrupt), (1, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_lines_are_stale_not_corrupt() {
        // A pre-attribution (v2) envelope, checksum and all: it must
        // classify as stale — a clean miss, never quarantine fodder.
        let mut body = String::from(
            "{\"v\":2,\"key\":\"000000000000002a\",\"workload\":\"unit\",\"report\":{}",
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        assert!(matches!(classify_line(&body), Line::Stale));
    }

    #[test]
    fn newest_line_wins_for_a_key() {
        let dir = temp_dir("store-newest");
        let key = 42u64;
        {
            let s = ResultStore::open(&dir).unwrap();
            let mut r = sample_report();
            s.put(key, "unit", &r).unwrap();
            r.cycles = 777;
            s.put(key, "unit", &r).unwrap();
        }
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.get(key).unwrap().cycles, 777);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_keeps_newest_per_key_and_round_trips() {
        let dir = temp_dir("store-compact");
        {
            let s = ResultStore::open(&dir).unwrap();
            let mut r = sample_report();
            s.put(1, "unit", &r).unwrap();
            s.put(2, "unit", &r).unwrap();
            r.cycles = 777;
            s.put(1, "unit", &r).unwrap();
        }
        // Add one stale and one corrupt line (to key 1's shard) for
        // compact to dispose of.
        let shard = shard_path(&dir, shard_of(1));
        let mut text = std::fs::read_to_string(&shard).unwrap();
        text.push_str("{\"v\":1,\"key\":\"0000000000000001\",\"workload\":\"u\",\"report\":{}}\n");
        text.push_str("{\"v\":2,\"key\":\"00\n");
        std::fs::write(&shard, &text).unwrap();

        let rep = compact(&dir).unwrap();
        assert_eq!(rep.kept, 2);
        assert_eq!(rep.superseded, 1);
        assert_eq!(rep.stale, 1);
        assert_eq!(rep.quarantined, 1);

        // Round trip: the compacted store still answers both keys, the
        // newest value won, and a second compact is a no-op.
        let s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 2);
        assert_eq!(s.stats().quarantined, 0);
        assert_eq!(s.get(1).unwrap().cycles, 777);
        assert!(s.get(2).is_some());
        drop(s);
        assert_eq!(
            compact(&dir).unwrap(),
            CompactReport {
                kept: 2,
                ..CompactReport::default()
            }
        );
        // compact's transient shard locks are cleaned up behind it.
        for i in 0..STORE_SHARDS {
            assert!(!shard_lock_path(&dir, i).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_migrates_a_legacy_store_first() {
        let dir = temp_dir("store-compact-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let mut text = encode_line(5, "unit", &sample_report());
        text.push('\n');
        text.push_str(&encode_line(5, "unit", &sample_report()));
        text.push('\n');
        std::fs::write(legacy_path(&dir), &text).unwrap();
        let rep = compact(&dir).unwrap();
        assert_eq!((rep.kept, rep.superseded), (1, 1));
        assert!(!legacy_path(&dir).exists());
        assert_eq!(verify(&dir).unwrap().entries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_the_quarantine_files() {
        let dir = temp_dir("store-gc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(legacy_path(&dir), "{\"v\":2,\"key\":\"00\n").unwrap();
        let rep = gc(&dir).unwrap();
        assert_eq!(rep.compact.quarantined, 1);
        assert!(rep.quarantine_bytes > 0);
        assert!(!legacy_quarantine(&dir).exists());
        for i in 0..STORE_SHARDS {
            assert!(!shard_quarantine_path(&dir, i).exists());
        }
        assert_eq!(verify(&dir).unwrap(), VerifyReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_is_read_only() {
        let dir = temp_dir("store-verify-ro");
        std::fs::create_dir_all(&dir).unwrap();
        let text = "{\"v\":2,\"key\":\"00\n";
        std::fs::write(legacy_path(&dir), text).unwrap();
        let rep = verify(&dir).unwrap();
        assert_eq!((rep.lines, rep.corrupt), (1, 1));
        // No migration, no quarantine, no healing: bytes untouched.
        assert_eq!(std::fs::read_to_string(legacy_path(&dir)).unwrap(), text);
        assert!(!legacy_quarantine(&dir).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
