//! Content-addressed, append-only, self-healing result store.
//!
//! Each finished job is recorded as one JSON line under a 64-bit
//! content key derived from the workload name and the full simulator
//! configuration (which includes the strategy and the instruction
//! budget). Re-running the same cell therefore finds the stored report
//! and skips simulation entirely.
//!
//! ## On-disk layout
//!
//! The store is a directory (by default `target/ctcp-results/`)
//! holding a single `results.jsonl`. Every line is an envelope whose
//! last field is a CRC-32 of everything before it:
//!
//! ```text
//! {"v":3,"key":"<16 hex digits>","workload":"gzip","report":{...},"crc":"<8 hex>"}
//! ```
//!
//! Lines are only ever appended; the newest line for a key wins at
//! load time. The store is a cache, never an authority — but it is a
//! *self-healing* cache:
//!
//! * **corrupt** lines (unparseable JSON, CRC mismatch, malformed key,
//!   undecodable report) are moved to `results.quarantine.jsonl` at
//!   open time and the main file is atomically rewritten without them,
//!   so one torn write from a killed run never degrades every later
//!   load, and the evidence survives for inspection;
//! * **stale** lines (older format versions) are kept in place and
//!   simply miss — their keys changed with the version salt anyway;
//! * an **advisory lock file** (`results.lock`) warns when two
//!   processes share one store directory; the store still proceeds,
//!   because appends are line-atomic in practice and corruption is
//!   recoverable by construction.
//!
//! Offline maintenance lives in [`verify`], [`compact`] and [`gc`],
//! surfaced as `ctcp store` subcommands.

use ctcp_sim::json::Value;
use ctcp_sim::{SimConfig, SimReport};
use ctcp_telemetry::failpoint;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Version salt folded into every key. Bump when the report schema or
/// the envelope changes; old store contents then miss cleanly. History:
/// v2 added the CRC field; v3 added the optional per-cell attribution
/// payload (`report.attrib`), reusing the v2 CRC machinery unchanged —
/// v2 lines are classified [`Line::Stale`] and simply miss.
pub const STORE_FORMAT_VERSION: u32 = 3;

/// File name of the store itself, inside the store directory.
const STORE_FILE: &str = "results.jsonl";
/// File name corrupt lines are moved to, inside the store directory.
const QUARANTINE_FILE: &str = "results.quarantine.jsonl";
/// Advisory lock file, inside the store directory.
const LOCK_FILE: &str = "results.lock";

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The content key of one job: FNV-1a 64 over the store version, the
/// workload name, and the `Debug` rendering of the configuration.
///
/// Hashing the `Debug` form means *every* config field participates —
/// adding a field to [`SimConfig`] automatically changes the keys of
/// affected cells, so stale results can never be returned for a config
/// the simulator has since learned to distinguish.
pub fn job_key(workload: &str, config: &SimConfig) -> u64 {
    let mut h = Fnv::new();
    h.write(&STORE_FORMAT_VERSION.to_le_bytes());
    h.write(workload.as_bytes());
    h.write(&[0]); // separator: name must not bleed into the config text
    h.write(format!("{config:?}").as_bytes());
    h.0
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the checksum zlib and PNG use. Hand-rolled because the build is
/// fully offline; the 256-entry table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Cumulative counters for one store handle's lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Distinct keys currently resident.
    pub entries: usize,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports written this session.
    pub puts: u64,
    /// Corrupt lines moved to the quarantine file when this handle
    /// opened the store.
    pub quarantined: u64,
}

/// A memoizing report store backed by one JSON-lines file.
pub struct ResultStore {
    path: PathBuf,
    file: File,
    map: HashMap<u64, SimReport>,
    stats: StoreStats,
    /// Held for the handle's lifetime; the OS drops the lock with it.
    /// `None` when another process holds it (advisory — we proceed).
    _lock: Option<File>,
}

impl ResultStore {
    /// The conventional store location, `target/ctcp-results`, relative
    /// to the current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("ctcp-results")
    }

    /// Opens (creating if needed) the store in `dir`, loads every
    /// decodable line into memory, and self-heals: corrupt lines are
    /// appended to `results.quarantine.jsonl` and the main file is
    /// atomically rewritten without them.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors (permissions, unwritable path) —
    /// malformed lines are quarantined, not fatal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let lock = acquire_lock(dir);
        let path = dir.join(STORE_FILE);
        let mut map = HashMap::new();
        let mut clean: Vec<String> = Vec::new();
        let mut corrupt: Vec<String> = Vec::new();
        if let Ok(existing) = File::open(&path) {
            for line in BufReader::new(existing).lines() {
                let line = line?;
                match classify_line(&line) {
                    Line::Valid { key, report } => {
                        map.insert(key, *report);
                        clean.push(line);
                    }
                    Line::Stale => clean.push(line),
                    Line::Blank => {}
                    Line::Corrupt => corrupt.push(line),
                }
            }
        }
        let quarantined = corrupt.len() as u64;
        if !corrupt.is_empty() {
            let mut q = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(QUARANTINE_FILE))?;
            for line in &corrupt {
                q.write_all(line.as_bytes())?;
                q.write_all(b"\n")?;
            }
            q.flush()?;
            atomic_rewrite(&path, &clean)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let entries = map.len();
        Ok(ResultStore {
            path,
            file,
            map,
            stats: StoreStats {
                entries,
                quarantined,
                ..StoreStats::default()
            },
            _lock: lock,
        })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up `key`, counting the outcome.
    pub fn get(&mut self, key: u64) -> Option<SimReport> {
        match self.map.get(&key) {
            Some(r) => {
                self.stats.hits += 1;
                Some(r.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records `report` under `key`, appending one line and flushing so
    /// a killed run loses at most the in-flight report.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the in-memory copy is kept either
    /// way, so the current process still benefits.
    pub fn put(&mut self, key: u64, workload: &str, report: &SimReport) -> std::io::Result<()> {
        self.stats.puts += 1;
        self.map.insert(key, report.clone());
        self.stats.entries = self.map.len();
        let line = encode_line(key, workload, report);
        // Fault injection: the `store-truncate` fail point models a
        // crash mid-append — half the bytes land, no newline. The next
        // open must quarantine the torn line, not choke on it.
        if failpoint::is_active("store-truncate") {
            self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
            return self.file.flush();
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Counters for this handle.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

/// Takes (or reports on) the advisory lock for `dir`. Conflicts warn
/// on stderr and proceed: the lock exists to flag accidental
/// concurrent sweeps sharing a store, not to serialise them — appends
/// are line-atomic in practice and open-time healing recovers the rest.
fn acquire_lock(dir: &Path) -> Option<File> {
    let lf = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false) // the file is a pure lock token; never clobber it
        .open(dir.join(LOCK_FILE))
        .ok()?;
    match lf.try_lock() {
        Ok(()) => Some(lf),
        Err(_) => {
            eprintln!(
                "warning: result store {} appears to be in use by another process; \
                 proceeding (the lock is advisory)",
                dir.display()
            );
            None
        }
    }
}

/// Atomically replaces `path` with `lines` via a temp file + rename,
/// so a crash mid-rewrite leaves either the old file or the new one —
/// never a half-written store.
fn atomic_rewrite(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = File::create(&tmp)?;
        for line in lines {
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn encode_line(key: u64, workload: &str, report: &SimReport) -> String {
    // The report is embedded as a parsed value, not a pre-rendered
    // string, so the envelope stays one well-formed JSON document.
    let report = Value::parse(&report.to_json()).expect("report encoding is valid JSON");
    let mut body = Value::Obj(vec![
        ("v".into(), Value::u64(u64::from(STORE_FORMAT_VERSION))),
        ("key".into(), Value::str(&format!("{key:016x}"))),
        ("workload".into(), Value::str(workload)),
        ("report".into(), report),
    ])
    .render();
    // The CRC covers the raw bytes before its own field, so a verifier
    // works on the line as written — no re-rendering, no float drift.
    assert_eq!(body.pop(), Some('}'));
    let crc = crc32(body.as_bytes());
    body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
    body
}

/// What one raw store line turned out to be.
enum Line {
    /// A current-version envelope with a matching checksum. The report
    /// is boxed so the common no-payload variants stay enum-cheap.
    Valid {
        /// The content key the line stores.
        key: u64,
        /// The decoded report.
        report: Box<SimReport>,
    },
    /// Well-formed but from an older format version: skipped, kept.
    Stale,
    /// Whitespace only (e.g. an editor's trailing newline): ignored.
    Blank,
    /// Torn, bit-rotted or malformed: quarantined.
    Corrupt,
}

/// Splits a v2 line into (bytes-the-CRC-covers, stored CRC).
fn split_crc(line: &str) -> Option<(&str, u32)> {
    let tail = line.strip_suffix('}')?;
    // The envelope's own crc field is rendered last, so the final
    // occurrence is always it — even if the report contained the text.
    let idx = tail.rfind(",\"crc\":\"")?;
    let hex = tail[idx..].strip_prefix(",\"crc\":\"")?.strip_suffix('"')?;
    if hex.len() != 8 {
        return None;
    }
    Some((&tail[..idx], u32::from_str_radix(hex, 16).ok()?))
}

fn classify_line(line: &str) -> Line {
    if line.trim().is_empty() {
        return Line::Blank;
    }
    let Ok(v) = Value::parse(line) else {
        return Line::Corrupt;
    };
    let Some(ver) = v.get("v").and_then(Value::as_u64) else {
        return Line::Corrupt;
    };
    if ver != u64::from(STORE_FORMAT_VERSION) {
        return Line::Stale;
    }
    let Some((covered, stored)) = split_crc(line) else {
        return Line::Corrupt;
    };
    if crc32(covered.as_bytes()) != stored {
        return Line::Corrupt;
    }
    let Some(key) = v
        .get("key")
        .and_then(Value::as_str)
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return Line::Corrupt;
    };
    let Some(report) = v.get("report").and_then(|r| SimReport::from_value(r).ok()) else {
        return Line::Corrupt;
    };
    Line::Valid {
        key,
        report: Box::new(report),
    }
}

/// What [`verify`] found in a store directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Non-blank lines scanned.
    pub lines: usize,
    /// Current-version lines with matching checksums.
    pub valid: usize,
    /// Well-formed lines from older format versions.
    pub stale: usize,
    /// Torn, bit-rotted or malformed lines.
    pub corrupt: usize,
    /// Distinct keys the valid lines resolve to.
    pub entries: usize,
}

/// Read-only integrity scan of the store in `dir`. Touches nothing:
/// no quarantine, no healing — safe to run concurrently with a sweep.
///
/// # Errors
///
/// Propagates real I/O errors; a missing store file verifies as empty.
pub fn verify(dir: impl AsRef<Path>) -> std::io::Result<VerifyReport> {
    let path = dir.as_ref().join(STORE_FILE);
    let mut rep = VerifyReport::default();
    let Ok(existing) = File::open(&path) else {
        return Ok(rep);
    };
    let mut keys = std::collections::HashSet::new();
    for line in BufReader::new(existing).lines() {
        match classify_line(&line?) {
            Line::Valid { key, .. } => {
                rep.lines += 1;
                rep.valid += 1;
                keys.insert(key);
            }
            Line::Stale => {
                rep.lines += 1;
                rep.stale += 1;
            }
            Line::Blank => {}
            Line::Corrupt => {
                rep.lines += 1;
                rep.corrupt += 1;
            }
        }
    }
    rep.entries = keys.len();
    Ok(rep)
}

/// What [`compact`] did to a store directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Lines kept (one per distinct key — the newest).
    pub kept: usize,
    /// Valid lines dropped because a newer line held the same key.
    pub superseded: usize,
    /// Old-format lines dropped (their keys can never hit again).
    pub stale: usize,
    /// Corrupt lines moved to the quarantine file.
    pub quarantined: usize,
}

/// Rewrites the store in `dir` down to one line per key — the newest —
/// dropping stale-version lines and quarantining corrupt ones. The
/// rewrite is atomic (temp file + rename); surviving lines keep their
/// original bytes and relative order.
///
/// # Errors
///
/// Propagates real I/O errors; a missing store file compacts to empty.
pub fn compact(dir: impl AsRef<Path>) -> std::io::Result<CompactReport> {
    let dir = dir.as_ref();
    let path = dir.join(STORE_FILE);
    let mut rep = CompactReport::default();
    let Ok(existing) = File::open(&path) else {
        return Ok(rep);
    };
    // (key, raw line) per valid line, in file order; last wins.
    let mut valid: Vec<(u64, String)> = Vec::new();
    let mut corrupt: Vec<String> = Vec::new();
    for line in BufReader::new(existing).lines() {
        let line = line?;
        match classify_line(&line) {
            Line::Valid { key, .. } => valid.push((key, line)),
            Line::Stale => rep.stale += 1,
            Line::Blank => {}
            Line::Corrupt => corrupt.push(line),
        }
    }
    rep.quarantined = corrupt.len();
    if !corrupt.is_empty() {
        let mut q = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(QUARANTINE_FILE))?;
        for line in &corrupt {
            q.write_all(line.as_bytes())?;
            q.write_all(b"\n")?;
        }
        q.flush()?;
    }
    // Keep only each key's final occurrence, preserving its position.
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (i, (key, _)) in valid.iter().enumerate() {
        last.insert(*key, i);
    }
    let kept: Vec<String> = valid
        .iter()
        .enumerate()
        .filter(|(i, (key, _))| last[key] == *i)
        .map(|(_, (_, line))| line.clone())
        .collect();
    rep.kept = kept.len();
    rep.superseded = valid.len() - kept.len();
    atomic_rewrite(&path, &kept)?;
    Ok(rep)
}

/// What [`gc`] reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// The compaction that ran first.
    pub compact: CompactReport,
    /// Bytes of quarantined evidence deleted.
    pub quarantine_bytes: u64,
}

/// Full garbage collection: [`compact`], then delete the quarantine
/// file — use once quarantined lines have been inspected (or given up
/// on).
///
/// # Errors
///
/// Propagates real I/O errors from either step.
pub fn gc(dir: impl AsRef<Path>) -> std::io::Result<GcReport> {
    let dir = dir.as_ref();
    let compact = compact(dir)?;
    let qpath = dir.join(QUARANTINE_FILE);
    let quarantine_bytes = match std::fs::metadata(&qpath) {
        Ok(m) => {
            std::fs::remove_file(&qpath)?;
            m.len()
        }
        Err(_) => 0,
    };
    Ok(GcReport {
        compact,
        quarantine_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_report, temp_dir};

    fn store_path(dir: &Path) -> PathBuf {
        dir.join(STORE_FILE)
    }

    fn quarantine_path(dir: &Path) -> PathBuf {
        dir.join(QUARANTINE_FILE)
    }

    /// A syntactically perfect envelope whose only defect is the one
    /// under test — so each test isolates one classification rule.
    fn forged_line(key_field: &str) -> String {
        let mut body = format!(
            "{{\"v\":{STORE_FORMAT_VERSION},\"key\":\"{key_field}\",\
             \"workload\":\"unit\",\"report\":{{}}"
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        body
    }

    #[test]
    fn keys_separate_workload_config_and_budget() {
        let a = SimConfig::default();
        let b = SimConfig {
            max_insts: a.max_insts + 1,
            ..SimConfig::default()
        };
        assert_ne!(job_key("gzip", &a), job_key("gcc", &a));
        assert_ne!(job_key("gzip", &a), job_key("gzip", &b));
        assert_eq!(job_key("gzip", &a), job_key("gzip", &a));
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value: crc32(b"123456789).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_carries_version_and_checksum() {
        let line = encode_line(0xabcd, "unit", &sample_report());
        assert!(line.starts_with(&format!("{{\"v\":{STORE_FORMAT_VERSION},")));
        let (covered, stored) = split_crc(&line).expect("crc field present");
        assert_eq!(crc32(covered.as_bytes()), stored);
        assert!(matches!(
            classify_line(&line),
            Line::Valid { key: 0xabcd, .. }
        ));
    }

    #[test]
    fn put_then_get_round_trips_across_reopen() {
        let dir = temp_dir("store-roundtrip");
        let report = sample_report();
        let key = job_key("unit", &SimConfig::default());
        {
            let mut s = ResultStore::open(&dir).unwrap();
            assert!(s.get(key).is_none());
            s.put(key, "unit", &report).unwrap();
            assert_eq!(s.stats().puts, 1);
            assert_eq!(s.stats().misses, 1);
        }
        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.stats().quarantined, 0);
        let back = s.get(key).expect("persisted report");
        assert_eq!(s.stats().hits, 1);
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_final_line_is_quarantined_and_healed() {
        let dir = temp_dir("store-truncated");
        let key = job_key("unit", &SimConfig::default());
        {
            let mut s = ResultStore::open(&dir).unwrap();
            s.put(key, "unit", &sample_report()).unwrap();
        }
        // Crash mid-append: the last line stops half way, no newline.
        let torn = {
            let full = encode_line(99, "unit", &sample_report());
            full[..full.len() / 2].to_string()
        };
        let mut text = std::fs::read_to_string(store_path(&dir)).unwrap();
        text.push_str(&torn);
        std::fs::write(store_path(&dir), &text).unwrap();

        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 1, "good line survives");
        assert_eq!(s.stats().quarantined, 1);
        assert!(s.get(key).is_some());
        assert!(s.get(99).is_none(), "torn line must miss");
        drop(s);
        // Healing: the torn line moved to quarantine, main file clean.
        let q = std::fs::read_to_string(quarantine_path(&dir)).unwrap();
        assert_eq!(q, format!("{torn}\n"));
        let healed = verify(&dir).unwrap();
        assert_eq!((healed.valid, healed.corrupt), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_hex_key_and_crc_mismatch_are_corrupt() {
        // A non-hex key behind a *valid* checksum: the key rule itself
        // must reject it.
        assert!(matches!(
            classify_line(&forged_line("zzzzzzzzzzzzzzzz")),
            Line::Corrupt
        ));
        // Wrong-length key, also behind a valid checksum.
        assert!(matches!(classify_line(&forged_line("00ff")), Line::Corrupt));
        // A single flipped byte in an otherwise perfect line.
        let line = encode_line(7, "unit", &sample_report()).replace("\"workload\"", "\"workloaD\"");
        assert!(matches!(classify_line(&line), Line::Corrupt));
    }

    #[test]
    fn mixed_version_lines_miss_without_quarantine() {
        let dir = temp_dir("store-mixed");
        let key = job_key("unit", &SimConfig::default());
        // A v1-era line (no CRC): well-formed, just old.
        let old = "{\"v\":1,\"key\":\"000000000000002a\",\"workload\":\"unit\",\"report\":{}}";
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(store_path(&dir), format!("{old}\n")).unwrap();
        {
            let mut s = ResultStore::open(&dir).unwrap();
            assert_eq!(s.stats().entries, 0, "stale line must miss");
            assert_eq!(s.stats().quarantined, 0, "stale is not corrupt");
            assert!(s.get(0x2a).is_none());
            s.put(key, "unit", &sample_report()).unwrap();
        }
        // The stale line is preserved in place alongside the new one.
        let text = std::fs::read_to_string(store_path(&dir)).unwrap();
        assert!(text.starts_with(old));
        let rep = verify(&dir).unwrap();
        assert_eq!((rep.valid, rep.stale, rep.corrupt), (1, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_lines_are_stale_not_corrupt() {
        // A pre-attribution (v2) envelope, checksum and all: it must
        // classify as stale — a clean miss, never quarantine fodder.
        let mut body = String::from(
            "{\"v\":2,\"key\":\"000000000000002a\",\"workload\":\"unit\",\"report\":{}",
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        assert!(matches!(classify_line(&body), Line::Stale));
    }

    #[test]
    fn newest_line_wins_for_a_key() {
        let dir = temp_dir("store-newest");
        let key = 42u64;
        {
            let mut s = ResultStore::open(&dir).unwrap();
            let mut r = sample_report();
            s.put(key, "unit", &r).unwrap();
            r.cycles = 777;
            s.put(key, "unit", &r).unwrap();
        }
        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.get(key).unwrap().cycles, 777);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_keeps_newest_per_key_and_round_trips() {
        let dir = temp_dir("store-compact");
        {
            let mut s = ResultStore::open(&dir).unwrap();
            let mut r = sample_report();
            s.put(1, "unit", &r).unwrap();
            s.put(2, "unit", &r).unwrap();
            r.cycles = 777;
            s.put(1, "unit", &r).unwrap();
        }
        // Add one stale and one corrupt line for compact to dispose of.
        let mut text = std::fs::read_to_string(store_path(&dir)).unwrap();
        text.push_str("{\"v\":1,\"key\":\"0000000000000001\",\"workload\":\"u\",\"report\":{}}\n");
        text.push_str("{\"v\":2,\"key\":\"00\n");
        std::fs::write(store_path(&dir), &text).unwrap();

        let rep = compact(&dir).unwrap();
        assert_eq!(rep.kept, 2);
        assert_eq!(rep.superseded, 1);
        assert_eq!(rep.stale, 1);
        assert_eq!(rep.quarantined, 1);

        // Round trip: the compacted store still answers both keys, the
        // newest value won, and a second compact is a no-op.
        let mut s = ResultStore::open(&dir).unwrap();
        assert_eq!(s.stats().entries, 2);
        assert_eq!(s.stats().quarantined, 0);
        assert_eq!(s.get(1).unwrap().cycles, 777);
        assert!(s.get(2).is_some());
        drop(s);
        assert_eq!(
            compact(&dir).unwrap(),
            CompactReport {
                kept: 2,
                ..CompactReport::default()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_the_quarantine_file() {
        let dir = temp_dir("store-gc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(store_path(&dir), "{\"v\":2,\"key\":\"00\n").unwrap();
        let rep = gc(&dir).unwrap();
        assert_eq!(rep.compact.quarantined, 1);
        assert!(rep.quarantine_bytes > 0);
        assert!(!quarantine_path(&dir).exists());
        assert_eq!(verify(&dir).unwrap(), VerifyReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_is_read_only() {
        let dir = temp_dir("store-verify-ro");
        std::fs::create_dir_all(&dir).unwrap();
        let text = "{\"v\":2,\"key\":\"00\n";
        std::fs::write(store_path(&dir), text).unwrap();
        let rep = verify(&dir).unwrap();
        assert_eq!((rep.lines, rep.corrupt), (1, 1));
        assert_eq!(std::fs::read_to_string(store_path(&dir)).unwrap(), text);
        assert!(!quarantine_path(&dir).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
