//! [`SweepSpec`]: the one description of a sweep grid.
//!
//! Historically the CLI's argument parser, the sweep service's wire
//! codec, and the sweep command each held their own copy of the grid
//! vocabulary — which benchmarks, strategies, geometries, and budgets a
//! sweep covers, and how a cell's geometry scales the front end. This
//! module is the single owner: every surface parses into (or renders
//! from) a [`SweepSpec`], and [`SweepSpec::expand`] is the only place
//! the grid is unrolled into concrete jobs, so the cell order and the
//! per-cell [`SimConfig`] can never drift between the one-shot CLI, the
//! daemon, and the harness.
//!
//! Validation is typed ([`SpecError`]), mirroring the simulator
//! builder's `ConfigError`: callers render the variant they got, tests
//! match on it.

use ctcp_sim::{SimConfig, Strategy, Topology};

/// Why a [`SweepSpec`] cannot be expanded into a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The benchmark list is empty.
    NoBenches,
    /// The strategy list is empty (the baseline alone renders no rows —
    /// every row is a speedup *over* it).
    NoStrategies,
    /// The cluster-count list is empty.
    NoClusters,
    /// The topology list is empty.
    NoTopologies,
    /// A cluster count outside the supported 1..=8 range.
    BadClusterCount {
        /// The offending count.
        clusters: u8,
    },
    /// A benchmark name appears twice — the grid would silently run
    /// (and render) the duplicate cells.
    DuplicateBench {
        /// The repeated name.
        bench: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoBenches => write!(f, "sweep has no benchmarks"),
            SpecError::NoStrategies => write!(f, "sweep has no strategies"),
            SpecError::NoClusters => write!(f, "sweep has no cluster counts"),
            SpecError::NoTopologies => write!(f, "sweep has no topologies"),
            SpecError::BadClusterCount { clusters } => {
                write!(f, "bad cluster count {clusters} (1..=8)")
            }
            SpecError::DuplicateBench { bench } => {
                write!(f, "benchmark {bench:?} appears twice in the sweep")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete description of a sweep grid: benchmarks × cluster counts
/// × topologies, with a baseline cell plus one cell per strategy in
/// every geometry, under a shared warmup/measurement budget.
///
/// The spec names benchmarks as strings — resolving a name to a program
/// is the caller's business (the CLI looks them up in the preset
/// suites), which keeps this crate free of a workload dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Benchmark names, in render order.
    pub benches: Vec<String>,
    /// Strategies to sweep; a baseline cell is always added per
    /// benchmark × geometry for the speedup column.
    pub strategies: Vec<Strategy>,
    /// Cluster counts to sweep (1..=8).
    pub clusters: Vec<u8>,
    /// Interconnect topologies to sweep.
    pub topologies: Vec<Topology>,
    /// Timed instruction budget per cell.
    pub insts: u64,
    /// Instructions to fast-forward (functional execution only, no
    /// timing) before the timed phase begins. Part of the cell's
    /// identity: a warmed-up run is a different experiment from an
    /// all-timed run, and the result store keys it accordingly.
    pub warmup: u64,
}

impl Default for SweepSpec {
    /// The focus sweep: six benchmarks, the four headline strategies,
    /// the paper's 4-cluster linear machine, 100k timed instructions,
    /// no warmup.
    fn default() -> Self {
        SweepSpec {
            benches: vec![
                "bzip2".into(),
                "eon".into(),
                "gzip".into(),
                "perlbmk".into(),
                "twolf".into(),
                "vpr".into(),
            ],
            strategies: vec![
                Strategy::IssueTime { latency: 0 },
                Strategy::IssueTime { latency: 4 },
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ],
            clusters: vec![4],
            topologies: vec![Topology::Linear],
            insts: 100_000,
            warmup: 0,
        }
    }
}

/// One renderable cell of an expanded sweep: which (bench, geometry,
/// strategy) job it is and where its baseline sits in the job list.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Benchmark name.
    pub bench: String,
    /// Cluster count of this cell's geometry.
    pub clusters: u8,
    /// Topology of this cell's geometry.
    pub topology: Topology,
    /// Index of this cell's job in [`SweepPlan::jobs`].
    pub job: usize,
    /// Index of the baseline job this cell's speedup is taken against.
    pub base_job: usize,
}

/// A [`SweepSpec`] unrolled into concrete work: one `(bench, config)`
/// pair per job — baselines included — and one [`SweepCell`] per
/// non-baseline cell, in render order.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Every job of the grid, in submission order: for each benchmark,
    /// for each geometry, the baseline job then one job per strategy.
    pub jobs: Vec<(String, SimConfig)>,
    /// The renderable cells, in table order.
    pub cells: Vec<SweepCell>,
}

impl SweepSpec {
    /// Checks the spec without expanding it.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.benches.is_empty() {
            return Err(SpecError::NoBenches);
        }
        if self.strategies.is_empty() {
            return Err(SpecError::NoStrategies);
        }
        if self.clusters.is_empty() {
            return Err(SpecError::NoClusters);
        }
        if self.topologies.is_empty() {
            return Err(SpecError::NoTopologies);
        }
        if let Some(&clusters) = self.clusters.iter().find(|c| !(1..=8).contains(*c)) {
            return Err(SpecError::BadClusterCount { clusters });
        }
        for (i, b) in self.benches.iter().enumerate() {
            if self.benches[..i].contains(b) {
                return Err(SpecError::DuplicateBench { bench: b.clone() });
            }
        }
        Ok(())
    }

    /// The full configuration of one cell. Geometry scales the front
    /// end with the execution core, as the paper does for its
    /// 8-wide/2-cluster machine: machine width = total issue slots,
    /// rename and retire width match it, and the ROB holds 8 entries
    /// per slot.
    pub fn cell_config(&self, strategy: Strategy, clusters: u8, topology: Topology) -> SimConfig {
        let mut c = SimConfig {
            strategy,
            max_insts: self.insts,
            warmup_insts: self.warmup,
            ..SimConfig::default()
        };
        c.engine.geometry.clusters = clusters;
        c.engine.geometry.topology = topology;
        let width = c.engine.geometry.total_slots();
        c.engine.rename_width = width;
        c.engine.retire_width = width;
        c.engine.rob_entries = 8 * width;
        c
    }

    /// Unrolls the grid: benchmarks outermost, then cluster counts,
    /// then topologies; within a geometry the baseline job comes first,
    /// then one job per strategy in spec order. This ordering is part
    /// of the output contract — tables render in it, and batched
    /// workers exploit it (consecutive jobs share a program, so one
    /// warmup checkpoint serves a whole run of cells).
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] [`validate`](SweepSpec::validate)
    /// finds.
    pub fn expand(&self) -> Result<SweepPlan, SpecError> {
        self.validate()?;
        let mut jobs: Vec<(String, SimConfig)> = Vec::new();
        let mut cells: Vec<SweepCell> = Vec::new();
        for bench in &self.benches {
            for &clusters in &self.clusters {
                for &topology in &self.topologies {
                    let base_job = jobs.len();
                    jobs.push((
                        bench.clone(),
                        self.cell_config(Strategy::Baseline, clusters, topology),
                    ));
                    for &s in &self.strategies {
                        cells.push(SweepCell {
                            bench: bench.clone(),
                            clusters,
                            topology,
                            job: jobs.len(),
                            base_job,
                        });
                        jobs.push((bench.clone(), self.cell_config(s, clusters, topology)));
                    }
                }
            }
        }
        Ok(SweepPlan { jobs, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            benches: vec!["gzip".into(), "twolf".into()],
            strategies: vec![
                Strategy::Fdrt { pinning: true },
                Strategy::Friendly { middle_bias: false },
            ],
            clusters: vec![2, 4],
            topologies: vec![Topology::Linear],
            insts: 5_000,
            warmup: 1_000,
        }
    }

    #[test]
    fn expansion_order_is_bench_geometry_baseline_then_strategies() {
        let plan = tiny_spec().expand().unwrap();
        // 2 benches × 2 geometries × (1 base + 2 strategies) jobs.
        assert_eq!(plan.jobs.len(), 12);
        assert_eq!(plan.cells.len(), 8);
        assert_eq!(plan.jobs[0].0, "gzip");
        assert_eq!(plan.jobs[0].1.strategy, Strategy::Baseline);
        assert_eq!(plan.jobs[1].1.strategy, Strategy::Fdrt { pinning: true });
        // The second geometry's baseline follows the first's strategies.
        assert_eq!(plan.jobs[3].1.strategy, Strategy::Baseline);
        assert_eq!(plan.jobs[3].1.engine.geometry.clusters, 4);
        // Benches are outermost: jobs 6.. are twolf's.
        assert_eq!(plan.jobs[6].0, "twolf");
        // Every cell points at the baseline of its own geometry.
        for c in &plan.cells {
            let (base_bench, base_cfg) = &plan.jobs[c.base_job];
            assert_eq!(*base_bench, c.bench);
            assert_eq!(base_cfg.strategy, Strategy::Baseline);
            assert_eq!(base_cfg.engine.geometry.clusters, c.clusters);
            assert_eq!(base_cfg.engine.geometry.topology, c.topology);
        }
    }

    #[test]
    fn cell_config_scales_the_front_end_and_carries_warmup() {
        let spec = tiny_spec();
        let c = spec.cell_config(Strategy::Baseline, 2, Topology::Ring);
        let width = c.engine.geometry.total_slots();
        assert_eq!(c.engine.rename_width, width);
        assert_eq!(c.engine.retire_width, width);
        assert_eq!(c.engine.rob_entries, 8 * width);
        assert_eq!(c.warmup_insts, 1_000);
        assert_eq!(c.max_insts, 5_000);
    }

    #[test]
    fn validation_is_typed_and_first_error_wins() {
        let ok = SweepSpec::default();
        assert_eq!(ok.validate(), Ok(()));
        let mut s = ok.clone();
        s.benches.clear();
        assert_eq!(s.validate(), Err(SpecError::NoBenches));
        let mut s = ok.clone();
        s.strategies.clear();
        assert_eq!(s.validate(), Err(SpecError::NoStrategies));
        let mut s = ok.clone();
        s.clusters = vec![4, 9];
        assert_eq!(
            s.validate(),
            Err(SpecError::BadClusterCount { clusters: 9 })
        );
        let mut s = ok.clone();
        s.topologies.clear();
        assert_eq!(s.validate(), Err(SpecError::NoTopologies));
        let mut s = ok.clone();
        s.benches.push("bzip2".into());
        assert_eq!(
            s.validate(),
            Err(SpecError::DuplicateBench {
                bench: "bzip2".into()
            })
        );
        assert!(s.expand().is_err(), "expand validates first");
    }

    #[test]
    fn errors_render_like_config_errors() {
        assert_eq!(
            SpecError::BadClusterCount { clusters: 9 }.to_string(),
            "bad cluster count 9 (1..=8)"
        );
        assert_eq!(SpecError::NoBenches.to_string(), "sweep has no benchmarks");
    }
}
