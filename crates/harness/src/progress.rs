//! Per-cell progress reporting, routed through a sink trait.
//!
//! The harness does not know who is watching a batch: a human at a
//! terminal wants a rewriting stderr status line, while the sweep
//! service (`ctcp-serve`) wants each finished cell forwarded to the
//! requesting client instead of landing on the daemon's own stderr.
//! [`ProgressSink`] is that seam; [`StderrProgress`] is the default
//! implementation and preserves the historical CLI output byte for
//! byte, and [`NullProgress`] discards everything.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Observer of one batch's execution, called on the submitting thread
/// only (never concurrently). A batch is bracketed by
/// [`batch_start`](ProgressSink::batch_start) and
/// [`batch_end`](ProgressSink::batch_end); every *simulated* cell (not
/// store hits, not coalesced duplicates) produces one
/// [`cell_done`](ProgressSink::cell_done) in completion order.
pub trait ProgressSink {
    /// A batch of `total` to-be-simulated cells is starting.
    fn batch_start(&mut self, total: usize);
    /// Cell number `done` (1-based, in completion order) named
    /// `workload` finished after `took` of wall time.
    fn cell_done(&mut self, done: usize, workload: &str, took: Duration);
    /// Like [`cell_done`](ProgressSink::cell_done), but additionally
    /// names the shared-scheduler pool worker that ran the cell. Only
    /// the shared-scheduler path calls this; the default forwards to
    /// `cell_done`, so sinks that do not care about lane attribution
    /// (the stderr reporter, tests) need not override it. The serve
    /// event sink overrides it to stamp a `worker` field into the
    /// streamed progress event, which the daemon turns into per-worker
    /// span lanes for `GET /trace/<token>`.
    fn cell_done_on(&mut self, done: usize, workload: &str, took: Duration, worker: usize) {
        let _ = worker;
        self.cell_done(done, workload, took);
    }
    /// The batch finished; flush any partial output.
    fn batch_end(&mut self);
}

/// A sink that discards every report.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    fn batch_start(&mut self, _total: usize) {}
    fn cell_done(&mut self, _done: usize, _workload: &str, _took: Duration) {}
    fn batch_end(&mut self) {}
}

/// Live batch progress on stderr — the historical harness behaviour.
///
/// The reporter rewrites a single status line (`\r`, no newline) as
/// jobs complete, showing completed/total, the running jobs/sec rate,
/// the wall time of the job that just finished, and an ETA. It is
/// enabled by default only when stderr is a terminal, so piped and
/// logged runs stay clean; tables on stdout are never touched.
pub struct StderrProgress {
    /// `None` auto-detects at batch start (on iff stderr is a terminal).
    forced: Option<bool>,
    enabled: bool,
    total: usize,
    start: Instant,
    /// Width of the previously drawn line, so shorter updates blank it.
    drawn: usize,
}

impl StderrProgress {
    /// `forced: None` auto-detects (on iff stderr is a terminal).
    pub fn new(forced: Option<bool>) -> StderrProgress {
        StderrProgress {
            forced,
            enabled: false,
            total: 0,
            start: Instant::now(),
            drawn: 0,
        }
    }
}

impl ProgressSink for StderrProgress {
    fn batch_start(&mut self, total: usize) {
        self.enabled = self
            .forced
            .unwrap_or_else(|| std::io::stderr().is_terminal())
            && total > 0;
        self.total = total;
        self.start = Instant::now();
        self.drawn = 0;
    }

    fn cell_done(&mut self, done: usize, workload: &str, took: Duration) {
        if !self.enabled {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        let line = format!(
            "[{done}/{total}] {rate:.1} jobs/s | {workload} {took:.2}s | eta {eta:.0}s",
            total = self.total,
            took = took.as_secs_f64(),
        );
        let pad = self.drawn.saturating_sub(line.len());
        self.drawn = line.len();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}{:pad$}", "");
        let _ = err.flush();
    }

    fn batch_end(&mut self) {
        if self.enabled && self.drawn > 0 {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
        }
        self.drawn = 0;
    }
}
