//! Live batch progress on stderr.
//!
//! The reporter rewrites a single status line (`\r`, no newline) as
//! jobs complete, showing completed/total, the running jobs/sec rate,
//! the wall time of the job that just finished, and an ETA. It is
//! enabled by default only when stderr is a terminal, so piped and
//! logged runs stay clean; tables on stdout are never touched.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

pub(crate) struct Progress {
    enabled: bool,
    total: usize,
    start: Instant,
    /// Width of the previously drawn line, so shorter updates blank it.
    drawn: usize,
}

impl Progress {
    /// `enabled: None` auto-detects (on iff stderr is a terminal).
    pub(crate) fn new(enabled: Option<bool>, total: usize) -> Progress {
        Progress {
            enabled: enabled.unwrap_or_else(|| std::io::stderr().is_terminal()) && total > 0,
            total,
            start: Instant::now(),
            drawn: 0,
        }
    }

    /// Reports the completion of job number `done` (1-based) named
    /// `workload`, which took `took` of wall time.
    pub(crate) fn job_done(&mut self, done: usize, workload: &str, took: Duration) {
        if !self.enabled {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        let line = format!(
            "[{done}/{total}] {rate:.1} jobs/s | {workload} {took:.2}s | eta {eta:.0}s",
            total = self.total,
            took = took.as_secs_f64(),
        );
        let pad = self.drawn.saturating_sub(line.len());
        self.drawn = line.len();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}{:pad$}", "");
        let _ = err.flush();
    }

    /// Ends the status line so subsequent output starts cleanly.
    pub(crate) fn finish(self) {
        if self.enabled && self.drawn > 0 {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
        }
    }
}
