#!/usr/bin/env bash
# Full verification gate: everything CI would require before merge.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite
#   2. formatting check (cargo fmt --check)
#   3. lint gate (cargo clippy --workspace, warnings are errors)
#   4. telemetry smoke: `ctcp trace --check` validates the Chrome trace
#      and reconciles its counters against the report
#   5. perf smoke: wall-time of a fixed sweep, recorded into
#      BENCH_baseline.json to track the perf trajectory over time
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ctcp trace smoke (exporter validity + counter reconciliation)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/ctcp trace gzip --strategy fdrt --insts 50000 \
    --out "$smoke_dir/trace.json" --metrics-out "$smoke_dir/metrics.jsonl" --check
test -s "$smoke_dir/trace.json"
test -s "$smoke_dir/metrics.jsonl"

echo "==> perf smoke (fixed sweep wall-time -> BENCH_baseline.json)"
# Fixed workload: no-probe sweep, single-threaded so the number tracks
# simulator speed rather than host core count; no cache so it always
# simulates.
start_ns=$(date +%s%N)
./target/release/ctcp sweep --benches gzip,twolf --strategies baseline,fdrt \
    --insts 50000 --jobs 1 >/dev/null
end_ns=$(date +%s%N)
wall_ms=$(( (end_ns - start_ns) / 1000000 ))
cat > BENCH_baseline.json <<EOF
{
  "bench": "sweep gzip,twolf x baseline,fdrt --insts 50000 --jobs 1",
  "wall_ms": $wall_ms,
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "perf smoke: ${wall_ms} ms (recorded in BENCH_baseline.json)"

echo "==> verify OK"
