#!/usr/bin/env bash
# Full verification gate: everything CI would require before merge.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite
#   2. formatting check (cargo fmt --check)
#   3. lint gate (cargo clippy --workspace, warnings are errors)
#   4. telemetry smoke: `ctcp trace --check` validates the Chrome trace
#      and reconciles its counters against the report
#   5. attribution smoke: `ctcp analyze --json` must emit non-empty CPI
#      stacks and `ctcp sweep --attrib` must append the attribution table
#   6. perf smoke: wall-time of a fixed sweep, recorded into
#      BENCH_baseline.json to track the perf trajectory over time
#   7. crash-injection smoke: a fail point panics one sweep cell; the
#      batch must finish, render the survivors, exit non-zero, and
#      leave a store that `ctcp store verify` passes clean
#   8. batch throughput gate: a warmup-heavy 96-cell sweep batched vs
#      CTCP_BATCH=off, recorded into BENCH_batch.json; batched must be
#      >= 2x the unbatched cells/sec and within 125% of the committed
#      reference
#   9. serve smoke: a real daemon on an ephemeral port serves a client
#      sweep byte-identical to the one-shot CLI, answers /status,
#      drains on shutdown, and leaves a populated sharded store with
#      no leftover socket or lock tokens
#  10. serve concurrency gate: four overlapping clients (one big sweep
#      + three memoized grids) against one daemon, recorded into
#      BENCH_serve.json; the aggregate must be <= half the serialized
#      one-shot reference, no cached client may wait more than 100 ms
#      behind the running sweep, and the concurrent time must stay
#      within 125% of the committed reference
#  11. serve chaos gate: SIGKILL a daemon mid-sweep, restart it over
#      the same store, and re-ask the identical grid — the journaled
#      request must replay, the output must be byte-identical to the
#      one-shot CLI, and no finished cell may be recomputed (each of
#      the grid's cells has exactly one valid store line)
#  12. serve observability gate: a daemon with debug logging to a file
#      serves a mixed workload while /metrics is scraped twice (the
#      exposition must parse and its counters must be monotone),
#      /trace/<token> must return a non-empty Chrome trace for the
#      request named in the structured log, every log line must be
#      JSON, and `ctcp top --once` must render a dashboard frame
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ctcp trace smoke (exporter validity + counter reconciliation)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/ctcp trace gzip --strategy fdrt --insts 50000 \
    --out "$smoke_dir/trace.json" --metrics-out "$smoke_dir/metrics.jsonl" --check
test -s "$smoke_dir/trace.json"
test -s "$smoke_dir/metrics.jsonl"

echo "==> attribution smoke (ctcp analyze --json + sweep --attrib)"
./target/release/ctcp analyze gzip --strategies base,fdrt --insts 20000 --json \
    > "$smoke_dir/analyze.json"
test -s "$smoke_dir/analyze.json"
grep -q '"attrib":{"stack":{"cycles":' "$smoke_dir/analyze.json"
grep -q '"inter_cluster":' "$smoke_dir/analyze.json"
# Non-empty stacks: no strategy may report a zero-cycle CPI stack.
if grep -q '"cycles":0,"slots"' "$smoke_dir/analyze.json"; then
    echo "FAIL: analyze emitted an empty CPI stack" >&2
    exit 1
fi
./target/release/ctcp sweep --benches gzip --strategies baseline,fdrt \
    --insts 20000 --jobs 1 --attrib > "$smoke_dir/sweep-attrib.out"
grep -q "attribution (fraction of retire slots" "$smoke_dir/sweep-attrib.out"

echo "==> perf smoke (fixed sweep wall-time -> BENCH_baseline.json)"
# Fixed workload: no-probe sweep, single-threaded so the number tracks
# simulator speed rather than host core count; no cache so it always
# simulates.
start_ns=$(date +%s%N)
./target/release/ctcp sweep --benches gzip,twolf --strategies baseline,fdrt \
    --insts 50000 --jobs 1 >/dev/null
end_ns=$(date +%s%N)
wall_ms=$(( (end_ns - start_ns) / 1000000 ))
cat > BENCH_baseline.json <<EOF
{
  "bench": "sweep gzip,twolf x baseline,fdrt --insts 50000 --jobs 1",
  "wall_ms": $wall_ms,
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "perf smoke: ${wall_ms} ms (recorded in BENCH_baseline.json)"

echo "==> crash-injection smoke (fail point panics one sweep cell)"
# The injected panic kills the twolf/fdrt cell (after one retry); the
# sweep must still complete, render the surviving gzip rows, append the
# failure table, and exit non-zero. Successes are cached in an
# isolated store (cwd-relative target/ctcp-results under the smoke
# dir), which must then verify clean.
if (cd "$smoke_dir" && CTCP_FAIL_POINT=job-panic=twolf:fdrt \
    "$OLDPWD/target/release/ctcp" sweep \
        --benches gzip,twolf --strategies fdrt --insts 20000 \
        --jobs 2 --cache > sweep-crash.out 2>/dev/null); then
    echo "FAIL: sweep with an injected crash must exit non-zero" >&2
    exit 1
fi
grep -q "^gzip" "$smoke_dir/sweep-crash.out"
grep -q "twolf/fdrt: panic:" "$smoke_dir/sweep-crash.out"

echo "==> result store verify (post-crash store must be clean)"
./target/release/ctcp store verify --dir "$smoke_dir/target/ctcp-results"

echo "==> engine perf gate (scheduler-bound sweep -> BENCH_engine.json)"
# Scheduler-bound workload: enough instructions that the engine's
# dispatch/wakeup/complete/select loop dominates wall time. Runs the
# event-driven scheduler (the default) and the legacy scan oracle
# (CTCP_SCHED=legacy) on the identical sweep, best of 3 to shed host
# noise; fails if the event path regresses more than 25% over the
# committed reference.
engine_bench="sweep gzip,twolf x baseline,friendly --insts 200000 --jobs 1 (best of 3)"
engine_sweep() {
    ./target/release/ctcp sweep --benches gzip,twolf \
        --strategies baseline,friendly --insts 200000 --jobs 1 >/dev/null
}
legacy_sweep() {
    CTCP_SCHED=legacy engine_sweep
}
best_of_3() {
    local best=0 ms start_ns end_ns
    for _ in 1 2 3; do
        start_ns=$(date +%s%N)
        "$@"
        end_ns=$(date +%s%N)
        ms=$(( (end_ns - start_ns) / 1000000 ))
        if [ "$best" -eq 0 ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    done
    echo "$best"
}
engine_ms=$(best_of_3 engine_sweep)
legacy_ms=$(best_of_3 legacy_sweep)
# The committed gate_ref_ms is the regression reference; keep it stable
# across runs so noise cannot ratchet the gate. Refresh it by deleting
# the field (or the file) and re-running verify.
gate_ref_ms=$(sed -n 's/.*"gate_ref_ms": \([0-9]*\).*/\1/p' BENCH_engine.json 2>/dev/null || true)
if [ -z "${gate_ref_ms}" ]; then
    gate_ref_ms=$engine_ms
fi
limit_ms=$(( gate_ref_ms * 125 / 100 ))
if [ "$engine_ms" -gt "$limit_ms" ]; then
    echo "FAIL: engine sweep took ${engine_ms} ms > ${limit_ms} ms" \
         "(125% of committed reference ${gate_ref_ms} ms)" >&2
    exit 1
fi
cat > BENCH_engine.json <<EOF
{
  "bench": "$engine_bench",
  "wall_ms": $engine_ms,
  "legacy_wall_ms": $legacy_ms,
  "gate_ref_ms": $gate_ref_ms,
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "engine perf gate: event ${engine_ms} ms, legacy ${legacy_ms} ms" \
     "(gate: ${limit_ms} ms)"

echo "==> batch throughput gate (batched vs unbatched sweep -> BENCH_batch.json)"
# Warmup-heavy grid: 96 cells (2 benches x 2 cluster counts x 3
# topologies x [baseline + 7 strategies]), each fast-forwarding 1M
# instructions before a short timed phase. Batched workers capture one
# warmup checkpoint per (program, warmup) and recycle engine arenas;
# CTCP_BATCH=off forces the one-cell-at-a-time path on the identical
# grid. Best of 3 each to shed host noise. The batched path must be at
# least 2x the unbatched cells/sec and within 125% of the committed
# reference.
batch_cells=96
batch_bench="sweep gzip,twolf x 7 strategies x {2,4} clusters x 3 topologies --warmup 1000000 --insts 2000 --jobs 1 (best of 3)"
batch_sweep() {
    ./target/release/ctcp sweep --benches gzip,twolf \
        --strategies issue0,issue4,friendly,friendly-mid,fdrt,fdrt-nopin,fdrt-intra \
        --clusters 2,4 --topology linear,ring,full \
        --warmup 1000000 --insts 2000 --jobs 1 >/dev/null
}
unbatched_sweep() {
    CTCP_BATCH=off batch_sweep
}
batched_ms=$(best_of_3 batch_sweep)
unbatched_ms=$(best_of_3 unbatched_sweep)
if [ "$unbatched_ms" -lt $(( batched_ms * 2 )) ]; then
    echo "FAIL: batched sweep (${batched_ms} ms) is not 2x faster than" \
         "unbatched (${unbatched_ms} ms)" >&2
    exit 1
fi
cells_per_sec=$(( batch_cells * 1000 / batched_ms ))
speedup_x100=$(( unbatched_ms * 100 / batched_ms ))
batch_ref_ms=$(sed -n 's/.*"gate_ref_ms": \([0-9]*\).*/\1/p' BENCH_batch.json 2>/dev/null || true)
if [ -z "${batch_ref_ms}" ]; then
    batch_ref_ms=$batched_ms
fi
batch_limit_ms=$(( batch_ref_ms * 125 / 100 ))
if [ "$batched_ms" -gt "$batch_limit_ms" ]; then
    echo "FAIL: batched sweep took ${batched_ms} ms > ${batch_limit_ms} ms" \
         "(125% of committed reference ${batch_ref_ms} ms)" >&2
    exit 1
fi
cat > BENCH_batch.json <<EOF
{
  "bench": "$batch_bench",
  "cells": $batch_cells,
  "batched_ms": $batched_ms,
  "unbatched_ms": $unbatched_ms,
  "cells_per_sec": $cells_per_sec,
  "speedup_x100": $speedup_x100,
  "gate_ref_ms": $batch_ref_ms,
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "batch throughput gate: batched ${batched_ms} ms, unbatched ${unbatched_ms} ms" \
     "(${cells_per_sec} cells/s, speedup ${speedup_x100}%)"

echo "==> serve smoke (daemon round-trip, status, drain)"
serve_store="$smoke_dir/serve-store"
./target/release/ctcp serve --addr 127.0.0.1:0 --jobs 2 --dir "$serve_store" \
    > "$smoke_dir/serve.out" 2>/dev/null &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 50); do
    serve_addr=$(sed -n 's/.*listening on //p' "$smoke_dir/serve.out" | head -n1)
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "FAIL: daemon never printed its listening address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
./target/release/ctcp client sweep --addr "$serve_addr" \
    --benches gzip --strategies fdrt --insts 20000 --csv \
    > "$smoke_dir/serve-sweep.csv" 2>/dev/null
./target/release/ctcp sweep --benches gzip --strategies fdrt --insts 20000 --csv \
    > "$smoke_dir/oneshot-sweep.csv"
cmp "$smoke_dir/serve-sweep.csv" "$smoke_dir/oneshot-sweep.csv"
./target/release/ctcp client status --addr "$serve_addr" \
    > "$smoke_dir/serve-status.json"
grep -q '"serve_requests"' "$smoke_dir/serve-status.json"
./target/release/ctcp client shutdown --addr "$serve_addr" >/dev/null
if ! wait "$serve_pid"; then
    echo "FAIL: daemon did not exit cleanly on shutdown" >&2
    exit 1
fi
grep -q "drained after" "$smoke_dir/serve.out"
# The drained store must hold the sweep's cells, sharded, with no
# leftover lock tokens; the socket must be closed.
cat "$serve_store"/shard-*.jsonl | grep -q .
if ls "$serve_store"/*.lock >/dev/null 2>&1; then
    echo "FAIL: orphaned lock tokens left in the serve store" >&2
    exit 1
fi
if ./target/release/ctcp client status --addr "$serve_addr" >/dev/null 2>&1; then
    echo "FAIL: daemon still listening after drain" >&2
    exit 1
fi

echo "==> serve concurrency gate (4-client mixed load -> BENCH_serve.json)"
# Mixed load: one big sweep (the 30-cell focus grid) plus three small
# grids the daemon has already memoized. The serialized reference runs
# the same four requests as one-shot CLI commands back-to-back (no
# daemon, no cache) — what the load costs without a resident service.
# The concurrent run launches all four clients at once against one
# daemon: the big sweep occupies the worker pool while the three
# cached requests are answered from the store fast path on their own
# connection threads. The aggregate must come in at <= half the
# serialized reference, and no cached client may wait more than
# 100 ms behind the running sweep (anything slower means requests are
# serializing on the handler again). Best of 3 each to shed host
# noise; 125% regression gate against the committed reference.
serve_gate_big="--benches focus --insts 20000"
serve_gate_small1="--benches gzip,twolf --insts 50000"
serve_gate_small2="--benches vpr,mcf --insts 50000"
serve_gate_small3="--benches gcc,parser --insts 50000"
serialized_load() {
    local req
    for req in "$serve_gate_big" "$serve_gate_small1" \
               "$serve_gate_small2" "$serve_gate_small3"; do
        # shellcheck disable=SC2086
        ./target/release/ctcp sweep $req --csv >/dev/null
    done
}
concurrent_load() {    # echoes "<total_ms> <worst_cached_client_ms>"
    local dir="$1" pid addr="" req i s e
    rm -rf "$dir"
    mkdir -p "$dir"
    ./target/release/ctcp serve --addr 127.0.0.1:0 --jobs 2 \
        --dir "$dir/store" > "$dir/serve.out" 2>/dev/null &
    pid=$!
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*listening on //p' "$dir/serve.out" | head -n1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: concurrency-gate daemon never printed its address" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi
    # Memoize the three small grids (untimed: a resident store that
    # stays warm across clients is the point of the service).
    for req in "$serve_gate_small1" "$serve_gate_small2" \
               "$serve_gate_small3"; do
        # shellcheck disable=SC2086
        ./target/release/ctcp client sweep --addr "$addr" $req --csv \
            >/dev/null 2>/dev/null
    done
    local start_ns end_ns total cached ms
    local pids=()
    i=0
    start_ns=$(date +%s%N)
    for req in "$serve_gate_big" "$serve_gate_small1" \
               "$serve_gate_small2" "$serve_gate_small3"; do
        (
            s=$(date +%s%N)
            # shellcheck disable=SC2086
            ./target/release/ctcp client sweep --addr "$addr" $req --csv \
                >/dev/null 2>/dev/null
            e=$(date +%s%N)
            echo $(( (e - s) / 1000000 )) > "$dir/client$i.ms"
        ) &
        pids+=($!)
        i=$((i + 1))
    done
    wait "${pids[@]}"
    end_ns=$(date +%s%N)
    ./target/release/ctcp client shutdown --addr "$addr" >/dev/null
    wait "$pid"
    total=$(( (end_ns - start_ns) / 1000000 ))
    cached=0
    for i in 1 2 3; do
        ms=$(cat "$dir/client$i.ms")
        if [ "$ms" -gt "$cached" ]; then cached=$ms; fi
    done
    echo "$total $cached"
}
serialized_ms=$(best_of_3 serialized_load)
concurrent_ms=0
cached_under_load_ms=0
for _ in 1 2 3; do
    conc_out=$(concurrent_load "$smoke_dir/serve-conc")
    conc_total=${conc_out% *}
    conc_cached=${conc_out#* }
    if [ "$concurrent_ms" -eq 0 ] || [ "$conc_total" -lt "$concurrent_ms" ]; then
        concurrent_ms=$conc_total
        cached_under_load_ms=$conc_cached
    fi
done
if [ "$serialized_ms" -lt $(( concurrent_ms * 2 )) ]; then
    echo "FAIL: concurrent 4-client load (${concurrent_ms} ms) is not 2x" \
         "faster than the serialized reference (${serialized_ms} ms)" >&2
    exit 1
fi
if [ "$cached_under_load_ms" -ge 100 ]; then
    echo "FAIL: a fully-cached client waited ${cached_under_load_ms} ms" \
         "behind the running sweep (limit 100 ms)" >&2
    exit 1
fi
serve_speedup_x100=$(( serialized_ms * 100 / concurrent_ms ))
serve_ref_ms=$(sed -n 's/.*"gate_ref_ms": \([0-9]*\).*/\1/p' BENCH_serve.json 2>/dev/null || true)
if [ -z "${serve_ref_ms}" ]; then
    serve_ref_ms=$concurrent_ms
fi
serve_limit_ms=$(( serve_ref_ms * 125 / 100 ))
if [ "$concurrent_ms" -gt "$serve_limit_ms" ]; then
    echo "FAIL: concurrent 4-client load took ${concurrent_ms} ms >" \
         "${serve_limit_ms} ms (125% of committed reference ${serve_ref_ms} ms)" >&2
    exit 1
fi
cat > BENCH_serve.json <<EOF
{
  "bench": "serve: focus x 20000 + 3 memoized 2-bench grids x 50000, 4 concurrent clients vs one-shot serialized (best of 3)",
  "concurrent_ms": $concurrent_ms,
  "serialized_ms": $serialized_ms,
  "speedup_x100": $serve_speedup_x100,
  "cached_under_load_ms": $cached_under_load_ms,
  "gate_ref_ms": $serve_ref_ms,
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "serve concurrency gate: concurrent ${concurrent_ms} ms, serialized" \
     "${serialized_ms} ms (speedup ${serve_speedup_x100}%, cached client" \
     "${cached_under_load_ms} ms under load)"

echo "==> serve chaos gate (SIGKILL mid-sweep, restart, resume)"
# Crash-recovery end to end against release binaries: a daemon is
# SIGKILLed while a six-cell sweep is mid-flight, restarted over the
# same store directory, and asked the identical grid again. The
# journal must replay the crashed request, cells memoized before the
# kill must come back as store hits (zero recomputation — exactly one
# valid store line per cell; the kill itself may leave one quarantined
# torn line), and the resumed output must be byte-identical to the
# one-shot CLI.
chaos_dir="$smoke_dir/serve-chaos"
mkdir -p "$chaos_dir"
chaos_grid="--benches gzip,twolf --strategies fdrt,friendly --insts 1000000"
chaos_daemon() {    # $1: log file; sets chaos_pid and chaos_addr
    ./target/release/ctcp serve --addr 127.0.0.1:0 --jobs 1 \
        --dir "$chaos_dir/store" > "$1" 2>/dev/null &
    chaos_pid=$!
    chaos_addr=""
    for _ in $(seq 1 50); do
        chaos_addr=$(sed -n 's/.*listening on //p' "$1" | head -n1)
        [ -n "$chaos_addr" ] && break
        sleep 0.1
    done
    if [ -z "$chaos_addr" ]; then
        echo "FAIL: chaos-gate daemon never printed its address" >&2
        kill "$chaos_pid" 2>/dev/null || true
        return 1
    fi
}
chaos_daemon "$chaos_dir/serve1.out"
# shellcheck disable=SC2086
./target/release/ctcp client sweep --addr "$chaos_addr" $chaos_grid --csv \
    > /dev/null 2> "$chaos_dir/victim.err" &
victim_pid=$!
# Two per-cell progress lines = mid-flight, with at least one finished
# cell durably memoized and journal-marked before the crash.
progressed=""
for _ in $(seq 1 400); do
    if [ "$(grep -c '^\[' "$chaos_dir/victim.err" 2>/dev/null)" -ge 2 ]; then
        progressed=yes
        break
    fi
    sleep 0.05
done
if [ -z "$progressed" ]; then
    echo "FAIL: chaos sweep never got mid-flight before the kill" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
if wait "$victim_pid" 2>/dev/null; then
    echo "FAIL: the victim client must fail when its daemon is killed" >&2
    exit 1
fi
chaos_daemon "$chaos_dir/serve2.out"
# shellcheck disable=SC2086
./target/release/ctcp client sweep --addr "$chaos_addr" $chaos_grid --csv \
    > "$chaos_dir/resumed.csv" 2>/dev/null
# shellcheck disable=SC2086
./target/release/ctcp sweep $chaos_grid --csv > "$chaos_dir/oneshot.csv"
cmp "$chaos_dir/resumed.csv" "$chaos_dir/oneshot.csv"
./target/release/ctcp client status --addr "$chaos_addr" > "$chaos_dir/status.json"
grep -q '"serve_journal_replayed":1' "$chaos_dir/status.json"
./target/release/ctcp client shutdown --addr "$chaos_addr" >/dev/null
if ! wait "$chaos_pid"; then
    echo "FAIL: restarted chaos daemon did not exit cleanly" >&2
    exit 1
fi
./target/release/ctcp store verify --dir "$chaos_dir/store" \
    > "$chaos_dir/store-verify.out" || true
if ! grep -q "6 valid (6 entries)" "$chaos_dir/store-verify.out"; then
    echo "FAIL: chaos store shows recomputed or missing cells:" >&2
    cat "$chaos_dir/store-verify.out" >&2
    exit 1
fi

echo "==> serve observability gate (/metrics, /trace, logs, ctcp top)"
obs_dir="$smoke_dir/serve-obs"
mkdir -p "$obs_dir"
./target/release/ctcp serve --addr 127.0.0.1:0 --jobs 2 \
    --dir "$obs_dir/store" --log-level debug --log-file "$obs_dir/serve.log" \
    > "$obs_dir/serve.out" 2>/dev/null &
obs_pid=$!
obs_addr=""
for _ in $(seq 1 50); do
    obs_addr=$(sed -n 's/.*listening on //p' "$obs_dir/serve.out" | head -n1)
    [ -n "$obs_addr" ] && break
    sleep 0.1
done
if [ -z "$obs_addr" ]; then
    echo "FAIL: observability-gate daemon never printed its address" >&2
    kill "$obs_pid" 2>/dev/null || true
    exit 1
fi
curl -sf "http://$obs_addr/metrics" > "$obs_dir/metrics1.txt"
# Mixed workload: a sweep and an analyze, like real clients.
./target/release/ctcp client sweep --addr "$obs_addr" \
    --benches gzip --strategies fdrt --insts 20000 --csv >/dev/null 2>&1
./target/release/ctcp client analyze --addr "$obs_addr" \
    --bench gzip --insts 10000 >/dev/null 2>&1
curl -sf "http://$obs_addr/metrics" > "$obs_dir/metrics2.txt"
# Exposition validity: every sample line is `name[{labels}] value`.
if grep -vE '^(#|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9.e+]+$)' \
        "$obs_dir/metrics2.txt" | grep -q .; then
    echo "FAIL: unparseable /metrics exposition lines:" >&2
    grep -vE '^(#|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9.e+]+$)' \
        "$obs_dir/metrics2.txt" >&2
    exit 1
fi
grep -q '^# TYPE ctcp_request_latency_ms histogram' "$obs_dir/metrics2.txt"
grep -q 'ctcp_request_latency_ms_bucket{le="+Inf"}' "$obs_dir/metrics2.txt"
# Counters are monotone between the two scrapes.
obs_before=$(awk '/^ctcp_serve_requests_total /{print $2}' "$obs_dir/metrics1.txt")
obs_after=$(awk '/^ctcp_serve_requests_total /{print $2}' "$obs_dir/metrics2.txt")
if [ -z "$obs_before" ] || [ -z "$obs_after" ] || [ "$obs_after" -lt "$obs_before" ]; then
    echo "FAIL: ctcp_serve_requests_total not monotone: '$obs_before' -> '$obs_after'" >&2
    exit 1
fi
if [ "$obs_after" -lt 2 ]; then
    echo "FAIL: the mixed workload was not counted: $obs_after" >&2
    exit 1
fi
# Every structured log line is JSON with the core fields; the finished
# request's token resolves to a non-empty Chrome trace.
python3 - "$obs_dir/serve.log" > "$obs_dir/token.txt" <<'EOF'
import json, sys
token = None
for line in open(sys.argv[1]):
    rec = json.loads(line)
    for key in ("ts_ms", "level", "target", "msg"):
        assert key in rec, f"log record missing {key}: {line!r}"
    if rec["msg"] == "request finished":
        token = rec["token"]
assert token, "no 'request finished' record in the log"
print(token)
EOF
obs_token=$(cat "$obs_dir/token.txt")
curl -sf "http://$obs_addr/trace/$obs_token" > "$obs_dir/trace.json"
python3 - "$obs_dir/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
spans = [e for e in events if e.get("ph") == "X"]
lanes = {e["tid"] for e in spans}
assert len(spans) >= 3, f"trace too thin: {len(spans)} spans"
assert len(lanes) >= 2, f"single-lane trace: {lanes}"
EOF
./target/release/ctcp top --addr "$obs_addr" --once > "$obs_dir/top.txt"
grep -q "ctcp top" "$obs_dir/top.txt"
grep -q "workers" "$obs_dir/top.txt"
grep -q "requests" "$obs_dir/top.txt"
./target/release/ctcp client shutdown --addr "$obs_addr" >/dev/null
if ! wait "$obs_pid"; then
    echo "FAIL: observability-gate daemon did not exit cleanly" >&2
    exit 1
fi

echo "==> verify OK"
