#!/usr/bin/env bash
# Full verification gate: everything CI would require before merge.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite
#   2. formatting check (cargo fmt --check)
#   3. lint gate (cargo clippy --workspace, warnings are errors)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
