//! Build a custom program with the TRISC program-builder API, run it
//! through the clustered trace cache processor, and inspect how the FDRT
//! chains treat its loop-carried dependency.
//!
//! The program is a small "histogram" kernel: it walks a table, updates
//! counters, and carries a checksum across iterations — the checksum is
//! exactly the kind of inter-trace dependency FDRT's cluster chains pin.
//!
//! Run with: `cargo run --release --example custom_workload`

use ctcp_isa::{Program, ProgramBuilder, Reg};
use ctcp_sim::{SimReport, Simulation, Strategy};

fn histogram_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    let table = Reg::R10;
    let idx = Reg::R1;
    let bound = Reg::R2;
    let checksum = Reg::R3; // loop-carried: the inter-trace dependency
    let val = Reg::R4;
    let slot = Reg::R5;
    let count = Reg::R6;

    b.movi(table, 0x2_0000);
    b.movi(bound, 1 << 30);
    b.movi(checksum, 0x9e37);
    b.movi(idx, 0);
    let top = b.here();
    // val = pseudo-data derived from the checksum
    b.slli(val, checksum, 13);
    b.xor(checksum, checksum, val);
    b.srli(val, checksum, 7);
    b.xor(checksum, checksum, val);
    // slot = table + (checksum & 255) * 8
    b.andi(slot, checksum, 255);
    b.slli(slot, slot, 3);
    b.add(slot, slot, table);
    // count = mem[slot] + 1; mem[slot] = count
    b.ld(count, slot, 0);
    b.addi(count, count, 1);
    b.st(count, slot, 0);
    // fold the count back into the checksum (lengthens the carried chain)
    b.add(checksum, checksum, count);
    b.addi(idx, idx, 1);
    b.blt(idx, bound, top);
    b.halt();
    b.build()
}

fn main() {
    let program = histogram_kernel();
    println!("histogram kernel: {} static instructions", program.len());

    let n = 120_000;
    let base = run_with_strategy(&program, Strategy::Baseline, n);
    let fdrt = run_with_strategy(&program, Strategy::Fdrt { pinning: true }, n);

    println!(
        "base: ipc {:.3}  intra-cluster {:.1}%  distance {:.2}",
        base.ipc,
        100.0 * base.metrics.fwd.intra_cluster_fraction(),
        base.metrics.fwd.mean_distance()
    );
    println!(
        "fdrt: ipc {:.3}  intra-cluster {:.1}%  distance {:.2}  speedup {:.3}",
        fdrt.ipc,
        100.0 * fdrt.metrics.fwd.intra_cluster_fraction(),
        fdrt.metrics.fwd.mean_distance(),
        fdrt.speedup_over(&base)
    );
    let stats = fdrt.metrics.fdrt.expect("FDRT statistics");
    let d = stats.option_distribution();
    println!(
        "fdrt chains: {} leaders, {} followers; migration {:.2}%",
        stats.leaders_created,
        stats.followers_created,
        100.0 * stats.migration_rate()
    );
    println!(
        "assignment options: A {:.0}% B {:.0}% C {:.0}% D {:.0}% E {:.0}% skipped {:.0}%",
        100.0 * d[0],
        100.0 * d[1],
        100.0 * d[2],
        100.0 * d[3],
        100.0 * d[4],
        100.0 * d[5]
    );
}

fn run_with_strategy(p: &ctcp_isa::Program, strategy: Strategy, max_insts: u64) -> SimReport {
    Simulation::builder(p)
        .strategy(strategy)
        .max_insts(max_insts)
        .build()
        .expect("valid default geometry")
        .run()
}
