//! The paper's §5.6 robustness study in miniature: run FDRT against the
//! baseline on alternative cluster organisations — a ring ("mesh")
//! interconnect, a one-cycle forwarding hop, and an eight-wide
//! two-cluster machine.
//!
//! Run with: `cargo run --release --example cluster_configs`

use ctcp_core::Topology;
use ctcp_sim::{harmonic_mean, SimConfig, Simulation, Strategy};
use ctcp_workload::Benchmark;

fn config(strategy: Strategy, variant: &str) -> SimConfig {
    let mut c = SimConfig {
        strategy,
        max_insts: 100_000,
        ..SimConfig::default()
    };
    match variant {
        "baseline 4x4 linear" => {}
        "ring interconnect" => c.engine.geometry.topology = Topology::Ring,
        "one-cycle hop" => c.engine.hop_latency = 1,
        "8-wide, 2 clusters" => {
            c.engine.geometry.clusters = 2;
            c.engine.rename_width = 8;
            c.engine.retire_width = 8;
            c.engine.rob_entries = 64;
        }
        other => unreachable!("unknown variant {other}"),
    }
    c
}

fn main() {
    let variants = [
        "baseline 4x4 linear",
        "ring interconnect",
        "one-cycle hop",
        "8-wide, 2 clusters",
    ];
    println!("FDRT speedup over each configuration's own slot-steered base:");
    for v in variants {
        let mut speedups = Vec::new();
        for b in Benchmark::spec_focus() {
            let program = b.program();
            let base = Simulation::builder(&program)
                .config(config(Strategy::Baseline, v))
                .build()
                .expect("valid geometry")
                .run();
            let fdrt = Simulation::builder(&program)
                .config(config(Strategy::Fdrt { pinning: true }, v))
                .build()
                .expect("valid geometry")
                .run();
            speedups.push(fdrt.speedup_over(&base));
        }
        println!("  {v:<22} HM speedup {:.3}", harmonic_mean(&speedups));
    }
}
