//! Quickstart: simulate one benchmark under every cluster-assignment
//! strategy and print speedups over the baseline.
//!
//! Run with: `cargo run --release --example quickstart [benchmark]`

use ctcp_sim::{SimReport, Simulation, Strategy};
use ctcp_workload::Benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".into());
    let bench = Benchmark::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; try one of:");
        for b in Benchmark::spec_all().iter().chain(&Benchmark::mediabench()) {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    });
    let program = bench.program();
    let n = 150_000;

    println!(
        "benchmark: {} ({} static instructions, {} simulated)",
        bench.name,
        program.len(),
        n
    );
    let base = run_with_strategy(&program, Strategy::Baseline, n);
    println!(
        "{:<16} ipc {:.3}                tc {:>5.1}%  intra-cluster fwd {:>5.1}%  fwd distance {:.2}",
        "base",
        base.ipc,
        100.0 * base.tc_inst_fraction(),
        100.0 * base.metrics.fwd.intra_cluster_fraction(),
        base.metrics.fwd.mean_distance()
    );
    for strategy in [
        Strategy::IssueTime { latency: 0 },
        Strategy::IssueTime { latency: 4 },
        Strategy::Friendly { middle_bias: false },
        Strategy::Fdrt { pinning: true },
    ] {
        let r = run_with_strategy(&program, strategy, n);
        println!(
            "{:<16} ipc {:.3} speedup {:.3}                intra-cluster fwd {:>5.1}%  fwd distance {:.2}",
            r.strategy,
            r.ipc,
            r.speedup_over(&base),
            100.0 * r.metrics.fwd.intra_cluster_fraction(),
            r.metrics.fwd.mean_distance()
        );
    }
}

fn run_with_strategy(p: &ctcp_isa::Program, strategy: Strategy, max_insts: u64) -> SimReport {
    Simulation::builder(p)
        .strategy(strategy)
        .max_insts(max_insts)
        .build()
        .expect("valid default geometry")
        .run()
}
