//! The paper's Figure 5 idealisation study on one benchmark: how much
//! performance is lost to each kind of dependency latency?
//!
//! Run with: `cargo run --release --example latency_study [benchmark]`

use ctcp_core::LatencyOverrides;
use ctcp_sim::{SimConfig, Simulation, Strategy};
use ctcp_workload::Benchmark;

fn run(bench: &Benchmark, overrides: LatencyOverrides, rf_latency: u64) -> f64 {
    let program = bench.program();
    let mut config = SimConfig {
        strategy: Strategy::Baseline,
        max_insts: 150_000,
        ..SimConfig::default()
    };
    config.engine.overrides = overrides;
    config.engine.rf_latency = rf_latency;
    Simulation::builder(&program)
        .config(config)
        .build()
        .expect("valid geometry")
        .run()
        .ipc
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".into());
    let bench = Benchmark::by_name(&name).expect("known benchmark");
    println!("latency sensitivity of {} (speedup over base):", bench.name);

    let base = run(&bench, LatencyOverrides::default(), 2);
    let cases: [(&str, LatencyOverrides, u64); 5] = [
        (
            "no forwarding latency",
            LatencyOverrides {
                no_forward_latency: true,
                ..Default::default()
            },
            2,
        ),
        (
            "no critical fwd latency",
            LatencyOverrides {
                no_critical_forward_latency: true,
                ..Default::default()
            },
            2,
        ),
        (
            "no intra-trace latency",
            LatencyOverrides {
                no_intra_trace_latency: true,
                ..Default::default()
            },
            2,
        ),
        (
            "no inter-trace latency",
            LatencyOverrides {
                no_inter_trace_latency: true,
                ..Default::default()
            },
            2,
        ),
        ("no register-file latency", LatencyOverrides::default(), 0),
    ];
    for (label, ov, rf) in cases {
        let ipc = run(&bench, ov, rf);
        println!("  {label:<26} {:.3}", ipc / base);
    }
    println!(
        "\nThe paper's observation: removing only the critical input's\n\
         forwarding latency recovers most of the ideal gain, and the\n\
         register file latency is immaterial — both should hold above."
    );
}
