//! Property-based tests of the substrate components: caches, store
//! buffer, memory, executor, and workload generation.

use ctcp::frontend::{BranchPredictor, HybridConfig, HybridPredictor};
use ctcp::isa::{Executor, WordMemory};
use ctcp::memory::{CacheConfig, SetAssocCache, StoreBuffer, StoreForward};
use ctcp::workload::{generate, WorkloadParams};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// A word written to memory is read back until overwritten; other
    /// words are unaffected.
    #[test]
    fn word_memory_matches_a_model(ops in proptest::collection::vec(
        (0u64..1 << 20, any::<i64>(), any::<bool>()), 1..200)) {
        let mut mem = WordMemory::new();
        let mut model: HashMap<u64, i64> = HashMap::new();
        for (addr, val, is_write) in ops {
            let word = addr & !7;
            if is_write {
                mem.write(word, val);
                model.insert(word, val);
            } else {
                let expect = model.get(&word).copied().unwrap_or(0);
                prop_assert_eq!(mem.read(word), expect);
            }
        }
    }

    /// A line just accessed is always resident, and residency never
    /// exceeds the cache's capacity in lines.
    #[test]
    fn cache_never_loses_the_most_recent_line(addrs in proptest::collection::vec(0u64..1 << 16, 1..300)) {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        });
        for a in addrs {
            c.access(a);
            prop_assert!(c.probe(a), "line {a:#x} evicted immediately");
        }
    }

    /// Re-accessing the same line is always a hit (temporal locality
    /// with no interference).
    #[test]
    fn back_to_back_accesses_hit(addr in 0u64..1 << 30) {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 1,
        });
        c.access(addr);
        prop_assert!(c.access(addr));
    }

    /// The store buffer forwards exactly the youngest older store to the
    /// same word, matching a brute-force model.
    #[test]
    fn store_buffer_matches_a_model(stores in proptest::collection::vec(
        (0u64..64, 0u64..8), 0..20), load_seq in 30u64..100, load_addr in 0u64..8) {
        let mut sb = StoreBuffer::new(32);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (seq, slot) in stores {
            let addr = slot * 8;
            if sb.insert(seq, addr) {
                model.push((seq, addr));
            }
        }
        let expected = model
            .iter()
            .filter(|(s, a)| *s < load_seq && *a == load_addr * 8)
            .map(|(s, _)| *s)
            .max();
        match sb.check_load(load_seq, load_addr * 8) {
            StoreForward::Forwarded { store_seq } => {
                prop_assert_eq!(Some(store_seq), expected)
            }
            StoreForward::None => prop_assert_eq!(expected, None),
        }
    }

    /// The hybrid predictor eventually learns any strongly biased branch.
    #[test]
    fn predictor_learns_biased_branches(pc in 0u64..1 << 20, taken in any::<bool>()) {
        let mut p = HybridPredictor::new(HybridConfig { entries: 1024 });
        for _ in 0..8 {
            p.update(pc * 4, taken);
        }
        prop_assert_eq!(p.predict(pc * 4), taken);
    }

    /// Any valid parameter combination generates a program that executes
    /// thousands of instructions without executor errors or early halt.
    #[test]
    fn generated_programs_are_well_formed(
        seed in 0u64..1 << 48,
        kernels in 1usize..6,
        mem_fraction in 0.0f64..0.5,
        fp_fraction in 0.0f64..0.5,
        chase in 0.0f64..0.8,
        ilp in 1usize..6,
        dispatch in proptest::option::of(1u32..4),
    ) {
        let params = WorkloadParams {
            seed,
            kernels,
            mem_fraction,
            fp_fraction,
            chase_fraction: chase,
            ilp_chains: ilp,
            dispatch_targets: dispatch.map(|d| 1usize << d),
            ..WorkloadParams::default()
        };
        let program = generate(&params);
        let mut ex = Executor::new(&program);
        let mut n = 0;
        for _ in 0..5_000 {
            match ex.next() {
                Some(_) => n += 1,
                None => break,
            }
        }
        prop_assert!(ex.error().is_none(), "executor error {:?}", ex.error());
        prop_assert_eq!(n, 5_000, "program halted early");
    }

    /// Generation is a pure function of the parameters.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let params = WorkloadParams { seed, ..WorkloadParams::default() };
        let a = generate(&params);
        let b = generate(&params);
        prop_assert_eq!(a.instructions(), b.instructions());
    }
}
