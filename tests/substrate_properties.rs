//! Randomised property tests of the substrate components: caches, store
//! buffer, memory, executor, and workload generation.
//!
//! These were proptest suites in earlier revisions; the workspace now
//! builds offline, so each property runs a fixed number of cases drawn
//! from the vendored [`Pcg32`] generator. Failures print the case seed,
//! which reproduces the exact inputs.

use ctcp::frontend::{BranchPredictor, HybridConfig, HybridPredictor};
use ctcp::isa::{Executor, WordMemory};
use ctcp::memory::{CacheConfig, SetAssocCache, StoreBuffer, StoreForward};
use ctcp::workload::{generate, Pcg32, WorkloadParams};
use std::collections::HashMap;

const CASES: u64 = 64;

/// A word written to memory is read back until overwritten; other words
/// are unaffected.
#[test]
fn word_memory_matches_a_model() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0x11AA ^ case);
        let mut mem = WordMemory::new();
        let mut model: HashMap<u64, i64> = HashMap::new();
        for _ in 0..r.range(1, 200) {
            let addr = r.next_u64() & ((1 << 20) - 1);
            let val = r.next_u64() as i64;
            let word = addr & !7;
            if r.chance(0.5) {
                mem.write(word, val);
                model.insert(word, val);
            } else {
                let expect = model.get(&word).copied().unwrap_or(0);
                assert_eq!(mem.read(word), expect, "case {case} word {word:#x}");
            }
        }
    }
}

/// A line just accessed is always resident, and residency never exceeds
/// the cache's capacity in lines.
#[test]
fn cache_never_loses_the_most_recent_line() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0x22BB ^ case);
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        });
        for _ in 0..r.range(1, 300) {
            let a = r.next_u64() & ((1 << 16) - 1);
            c.access(a);
            assert!(c.probe(a), "case {case}: line {a:#x} evicted immediately");
        }
    }
}

/// Re-accessing the same line is always a hit (temporal locality with no
/// interference).
#[test]
fn back_to_back_accesses_hit() {
    let mut r = Pcg32::seed_from_u64(0x33CC);
    for case in 0..CASES {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 1,
        });
        let addr = r.next_u64() & ((1 << 30) - 1);
        c.access(addr);
        assert!(c.access(addr), "case {case} addr {addr:#x}");
    }
}

/// The store buffer forwards exactly the youngest older store to the
/// same word, matching a brute-force model.
#[test]
fn store_buffer_matches_a_model() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0x44DD ^ case);
        let mut sb = StoreBuffer::new(32);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for _ in 0..r.range(0, 20) {
            let seq = r.range(0, 64) as u64;
            let addr = r.range(0, 8) as u64 * 8;
            if sb.insert(seq, addr) {
                model.push((seq, addr));
            }
        }
        let load_seq = r.range(30, 100) as u64;
        let load_addr = r.range(0, 8) as u64 * 8;
        let expected = model
            .iter()
            .filter(|(s, a)| *s < load_seq && *a == load_addr)
            .map(|(s, _)| *s)
            .max();
        match sb.check_load(load_seq, load_addr) {
            StoreForward::Forwarded { store_seq } => {
                assert_eq!(Some(store_seq), expected, "case {case}")
            }
            StoreForward::None => assert_eq!(expected, None, "case {case}"),
        }
    }
}

/// The hybrid predictor eventually learns any strongly biased branch.
#[test]
fn predictor_learns_biased_branches() {
    let mut r = Pcg32::seed_from_u64(0x55EE);
    for case in 0..CASES {
        let pc = (r.next_u64() & ((1 << 20) - 1)) * 4;
        let taken = r.chance(0.5);
        let mut p = HybridPredictor::new(HybridConfig { entries: 1024 });
        for _ in 0..8 {
            p.update(pc, taken);
        }
        assert_eq!(p.predict(pc), taken, "case {case} pc {pc:#x}");
    }
}

/// Any valid parameter combination generates a program that executes
/// thousands of instructions without executor errors or early halt.
#[test]
fn generated_programs_are_well_formed() {
    for case in 0..24 {
        let mut r = Pcg32::seed_from_u64(0x66FF ^ case);
        let params = WorkloadParams {
            seed: r.next_u64() & ((1 << 48) - 1),
            kernels: r.range(1, 6) as usize,
            mem_fraction: r.range(0, 50) as f64 / 100.0,
            fp_fraction: r.range(0, 50) as f64 / 100.0,
            chase_fraction: r.range(0, 80) as f64 / 100.0,
            ilp_chains: r.range(1, 6) as usize,
            dispatch_targets: if r.chance(0.5) {
                Some(1usize << r.range(1, 4))
            } else {
                None
            },
            ..WorkloadParams::default()
        };
        let program = generate(&params);
        let mut ex = Executor::new(&program);
        let mut n = 0;
        for _ in 0..5_000 {
            match ex.next() {
                Some(_) => n += 1,
                None => break,
            }
        }
        assert!(
            ex.error().is_none(),
            "case {case}: executor error {:?} with {params:?}",
            ex.error()
        );
        assert_eq!(n, 5_000, "case {case}: program halted early ({params:?})");
    }
}

/// Generation is a pure function of the parameters.
#[test]
fn generation_is_deterministic() {
    let mut r = Pcg32::seed_from_u64(0x7700);
    for _ in 0..16 {
        let params = WorkloadParams {
            seed: r.next_u64(),
            ..WorkloadParams::default()
        };
        let a = generate(&params);
        let b = generate(&params);
        assert_eq!(a.instructions(), b.instructions(), "seed {}", params.seed);
    }
}
