//! Calibration regression tests: the synthetic workloads must stay in
//! the regime where the paper's evaluation is meaningful. These bounds
//! are deliberately loose — they catch a workload or simulator change
//! that breaks the reproduction, not run-to-run noise.

use ctcp::sim::{SimConfig, SimReport, Simulation, Strategy};
use ctcp::workload::Benchmark;

const N: u64 = 60_000;

/// Local shim over the builder API with the old free-function shape.
fn run_with_strategy(p: &ctcp::isa::Program, strategy: Strategy, max_insts: u64) -> SimReport {
    Simulation::builder(p)
        .strategy(strategy)
        .max_insts(max_insts)
        .build()
        .expect("valid default geometry")
        .run()
}

#[test]
fn focus_benchmarks_look_like_the_papers_table1_and_2() {
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let r = run_with_strategy(&p, Strategy::Baseline, N);
        // Table 1 regime: trace cache supplies most instructions, traces
        // span multiple blocks.
        assert!(
            r.tc_inst_fraction() > 0.70,
            "{}: %TC {:.2}",
            b.name,
            r.tc_inst_fraction()
        );
        assert!(
            (6.0..=16.0).contains(&r.avg_trace_size()),
            "{}: trace size {:.1}",
            b.name,
            r.avg_trace_size()
        );
        // Era-appropriate conditional misprediction rates.
        assert!(
            r.mispredict_rate() < 0.15,
            "{}: mispredict {:.3}",
            b.name,
            r.mispredict_rate()
        );
        // Table 2 regime: most forwarded dependencies are critical and a
        // material fraction are inter-trace.
        assert!(
            r.metrics.fwd.critical_fraction() > 0.6,
            "{}: critical fraction {:.2}",
            b.name,
            r.metrics.fwd.critical_fraction()
        );
        assert!(
            (0.10..=0.50).contains(&r.metrics.fwd.inter_trace_fraction()),
            "{}: inter-trace {:.2}",
            b.name,
            r.metrics.fwd.inter_trace_fraction()
        );
    }
}

#[test]
fn forwarding_latency_matters_in_the_baseline() {
    // The six focus benchmarks were chosen by the paper for their
    // forwarding-latency sensitivity; removing all forwarding latency
    // must be worth at least 20 % on each.
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let base = run_with_strategy(&p, Strategy::Baseline, N);
        let mut c = SimConfig {
            strategy: Strategy::Baseline,
            max_insts: N,
            ..SimConfig::default()
        };
        c.engine.overrides.no_forward_latency = true;
        let ideal = Simulation::builder(&p).config(c).build().unwrap().run();
        let speedup = ideal.speedup_over(&base);
        assert!(
            speedup > 1.20,
            "{}: no-forwarding speedup only {:.3}",
            b.name,
            speedup
        );
    }
}

#[test]
fn fdrt_wins_on_the_focus_harmonic_mean() {
    // The headline reproduction: FDRT clearly above base and above
    // Friendly on the harmonic mean (the paper: +11.5 % vs +3.1 %).
    let mut fdrt_speedups = Vec::new();
    let mut friendly_speedups = Vec::new();
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let base = run_with_strategy(&p, Strategy::Baseline, N);
        let fdrt = run_with_strategy(&p, Strategy::Fdrt { pinning: true }, N);
        let friendly = run_with_strategy(&p, Strategy::Friendly { middle_bias: false }, N);
        fdrt_speedups.push(fdrt.speedup_over(&base));
        friendly_speedups.push(friendly.speedup_over(&base));
    }
    let fdrt_hm = ctcp::sim::harmonic_mean(&fdrt_speedups);
    let friendly_hm = ctcp::sim::harmonic_mean(&friendly_speedups);
    assert!(fdrt_hm > 1.03, "FDRT HM {:.3}", fdrt_hm);
    assert!(
        fdrt_hm > friendly_hm,
        "FDRT {:.3} should beat Friendly {:.3}",
        fdrt_hm,
        friendly_hm
    );
}

#[test]
fn fdrt_option_distribution_is_paper_shaped() {
    // Figure 7 regime: option A dominates, chains (B+C) are a meaningful
    // minority, skipped stays small.
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let r = run_with_strategy(&p, Strategy::Fdrt { pinning: true }, N);
        let d = r.metrics.fdrt.expect("fdrt stats").option_distribution();
        assert!(d[0] > 0.25, "{}: option A {:.2}", b.name, d[0]);
        assert!(
            (0.05..=0.60).contains(&(d[1] + d[2])),
            "{}: chains B+C {:.2}",
            b.name,
            d[1] + d[2]
        );
        assert!(d[5] < 0.15, "{}: skipped {:.2}", b.name, d[5]);
    }
}
