//! Whole-pipeline integration tests: invariants that must hold across
//! the fetch → execute → retire → fill loop, for every strategy.

use ctcp::isa::{Executor, ProgramBuilder, Reg};
use ctcp::sim::{SimConfig, SimReport, Simulation, Strategy};
use ctcp::workload::Benchmark;

const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::Baseline,
    Strategy::IssueTime { latency: 0 },
    Strategy::IssueTime { latency: 4 },
    Strategy::Friendly { middle_bias: false },
    Strategy::Friendly { middle_bias: true },
    Strategy::Fdrt { pinning: true },
    Strategy::Fdrt { pinning: false },
];

/// Local shim over the builder API with the old free-function shape.
fn run_with_strategy(p: &ctcp::isa::Program, strategy: Strategy, max_insts: u64) -> SimReport {
    Simulation::builder(p)
        .strategy(strategy)
        .max_insts(max_insts)
        .build()
        .expect("valid default geometry")
        .run()
}

/// A small program mixing arithmetic, memory, calls, and loops.
fn mixed_program() -> ctcp::isa::Program {
    let mut b = ProgramBuilder::new();
    let func = b.label();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, 400);
    b.movi(Reg::R10, 0x8000);
    let top = b.here();
    b.call(func);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.bind(func);
    b.slli(Reg::R3, Reg::R1, 3);
    b.add(Reg::R3, Reg::R3, Reg::R10);
    b.ld(Reg::R4, Reg::R3, 0);
    b.add(Reg::R4, Reg::R4, Reg::R1);
    b.st(Reg::R4, Reg::R3, 0);
    b.mul(Reg::R5, Reg::R4, Reg::R1);
    b.ret();
    b.build()
}

#[test]
fn every_strategy_retires_the_whole_program() {
    let p = mixed_program();
    let expected = Executor::new(&p).count() as u64;
    for s in ALL_STRATEGIES {
        let r = run_with_strategy(&p, s, u64::MAX / 2);
        assert_eq!(
            r.instructions,
            expected,
            "{} lost or duplicated instructions",
            s.name()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let p = mixed_program();
    for s in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
        let a = run_with_strategy(&p, s, 10_000);
        let b = run_with_strategy(&p, s, 10_000);
        assert_eq!(a.cycles, b.cycles, "{}", s.name());
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.metrics.insts_from_tc, b.metrics.insts_from_tc);
        assert_eq!(a.metrics.cond_mispredicts, b.metrics.cond_mispredicts);
    }
}

#[test]
fn ipc_stays_within_machine_width() {
    let p = mixed_program();
    for s in ALL_STRATEGIES {
        let r = run_with_strategy(&p, s, 20_000);
        assert!(r.ipc > 0.05, "{} ipc {:.3} absurdly low", s.name(), r.ipc);
        assert!(r.ipc <= 16.0, "{} ipc {:.3} beyond width", s.name(), r.ipc);
    }
}

#[test]
fn trace_cache_dominates_steady_state_loops() {
    let p = mixed_program();
    let r = run_with_strategy(&p, Strategy::Baseline, 4_000);
    assert!(
        r.tc_inst_fraction() > 0.6,
        "tc fraction only {:.2}",
        r.tc_inst_fraction()
    );
    assert!(r.avg_trace_size() >= 4.0);
}

#[test]
fn mispredictable_branches_cost_cycles() {
    // Same loop body; one version branches on an lcg bit (hard), the
    // other on a constant condition (easy).
    let build = |hard: bool| {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 0);
        b.movi(Reg::R2, 3_000);
        b.movi(Reg::R9, 12345);
        let top = b.here();
        b.slli(Reg::R3, Reg::R9, 13);
        b.xor(Reg::R9, Reg::R9, Reg::R3);
        b.srli(Reg::R3, Reg::R9, 7);
        b.xor(Reg::R9, Reg::R9, Reg::R3);
        let skip = b.label();
        if hard {
            b.andi(Reg::R4, Reg::R9, 1);
        } else {
            b.movi(Reg::R4, 0);
        }
        b.bne(Reg::R4, Reg::ZERO, skip);
        b.addi(Reg::R5, Reg::R5, 1);
        b.bind(skip);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build()
    };
    let easy = build(false);
    let hard = build(true);
    let re = run_with_strategy(&easy, Strategy::Baseline, 1_000_000);
    let rh = run_with_strategy(&hard, Strategy::Baseline, 1_000_000);
    assert!(
        re.mispredict_rate() < 0.02,
        "easy {:.3}",
        re.mispredict_rate()
    );
    assert!(
        rh.mispredict_rate() > 0.2,
        "hard {:.3}",
        rh.mispredict_rate()
    );
    assert!(rh.ipc < re.ipc, "mispredictions should cost throughput");
}

#[test]
fn fdrt_improves_forwarding_locality_on_focus_benchmarks() {
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let base = run_with_strategy(&p, Strategy::Baseline, 40_000);
        let fdrt = run_with_strategy(&p, Strategy::Fdrt { pinning: true }, 40_000);
        assert!(
            fdrt.metrics.fwd.intra_cluster_fraction() > base.metrics.fwd.intra_cluster_fraction(),
            "{}: fdrt {:.3} <= base {:.3}",
            b.name,
            fdrt.metrics.fwd.intra_cluster_fraction(),
            base.metrics.fwd.intra_cluster_fraction()
        );
        assert!(
            fdrt.metrics.fwd.mean_distance() < base.metrics.fwd.mean_distance(),
            "{}: fdrt distance {:.3} >= base {:.3}",
            b.name,
            fdrt.metrics.fwd.mean_distance(),
            base.metrics.fwd.mean_distance()
        );
    }
}

#[test]
fn pinning_reduces_chain_migration() {
    for b in Benchmark::spec_focus() {
        let p = b.program();
        let pin = run_with_strategy(&p, Strategy::Fdrt { pinning: true }, 60_000);
        let nopin = run_with_strategy(&p, Strategy::Fdrt { pinning: false }, 60_000);
        let sp = pin.metrics.fdrt.expect("stats");
        let sn = nopin.metrics.fdrt.expect("stats");
        assert!(
            sp.chain_migration_rate() < sn.chain_migration_rate(),
            "{}: pin {:.3} >= nopin {:.3}",
            b.name,
            sp.chain_migration_rate(),
            sn.chain_migration_rate()
        );
    }
}

#[test]
fn ideal_wide_machine_beats_narrow_machine() {
    // A 16-wide clustered machine can lose to an 8-wide one because its
    // forwarding distances triple — the communication/width trade-off
    // clustering papers revolve around. But with forwarding latency
    // idealised away, the wide machine must win.
    let bench = Benchmark::by_name("gzip").unwrap();
    let p = bench.program();
    let mut wide_ideal = SimConfig {
        strategy: Strategy::Baseline,
        max_insts: 40_000,
        ..SimConfig::default()
    };
    wide_ideal.engine.overrides.no_forward_latency = true;
    let wide = Simulation::builder(&p)
        .config(wide_ideal)
        .build()
        .unwrap()
        .run();

    let mut narrow_cfg = SimConfig {
        strategy: Strategy::Baseline,
        max_insts: 40_000,
        ..SimConfig::default()
    };
    narrow_cfg.engine.geometry.clusters = 2;
    narrow_cfg.engine.rename_width = 8;
    narrow_cfg.engine.retire_width = 8;
    narrow_cfg.engine.rob_entries = 64;
    let narrow = Simulation::builder(&p)
        .config(narrow_cfg)
        .build()
        .unwrap()
        .run();
    assert!(
        narrow.ipc < wide.ipc,
        "8-wide {:.3} should lose to an ideal 16-wide {:.3}",
        narrow.ipc,
        wide.ipc
    );
}

#[test]
fn zero_hop_latency_is_an_upper_bound() {
    let bench = Benchmark::by_name("twolf").unwrap();
    let p = bench.program();
    for s in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
        let real = run_with_strategy(&p, s, 40_000);
        let mut c = SimConfig {
            strategy: s,
            max_insts: 40_000,
            ..SimConfig::default()
        };
        c.engine.overrides.no_forward_latency = true;
        let ideal = Simulation::builder(&p).config(c).build().unwrap().run();
        assert!(
            ideal.cycles <= real.cycles,
            "{}: ideal {} > real {}",
            s.name(),
            ideal.cycles,
            real.cycles
        );
    }
}

#[test]
fn all_suite_benchmarks_simulate_cleanly() {
    for b in Benchmark::spec_all()
        .into_iter()
        .chain(Benchmark::mediabench())
    {
        let p = b.program();
        let r = run_with_strategy(&p, Strategy::Fdrt { pinning: true }, 8_000);
        assert_eq!(r.instructions, 8_000, "{} truncated", b.name);
        assert!(r.ipc > 0.05, "{} ipc {:.3}", b.name, r.ipc);
    }
}
