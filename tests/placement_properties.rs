//! Randomised property tests of the retire-time placement strategies:
//! for *any* trace, every strategy must produce a valid physical
//! placement (injective into the line, within per-cluster capacity), and
//! chain state must evolve monotonically under pinning.
//!
//! Cases are drawn from the vendored [`Pcg32`] generator so the suite
//! runs offline; a failing assertion reports the case seed.

use ctcp::core::assign::{
    baseline_placement, friendly_placement, FdrtAssigner, FdrtConfig, MapChainStore, SlotFillOrder,
};
use ctcp::core::ClusterGeometry;
use ctcp::isa::{Instruction, Opcode, Reg};
use ctcp::tracecache::{ChainRole, ExecFeedback, PendingInst, ProfileFields, RawTrace};
use ctcp::workload::Pcg32;

const CASES: u64 = 64;

/// A random (possibly dependent) instruction.
fn arb_inst(r: &mut Pcg32) -> Instruction {
    let d = Reg::int(r.index(8) as u8);
    let a = Reg::int(r.index(8) as u8);
    let b = Reg::int(r.index(8) as u8);
    match r.index(5) {
        0 => Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0),
        1 => Instruction::new(Opcode::Xor, Some(d), Some(a), Some(b), 0),
        2 => Instruction::new(Opcode::Mul, Some(d), Some(a), Some(b), 0),
        3 => Instruction::new(Opcode::Ld, Some(d), Some(a), None, 8),
        _ => Instruction::new(Opcode::St, None, Some(a), Some(b), 8),
    }
}

fn arb_trace(r: &mut Pcg32, max_len: usize) -> RawTrace {
    let len = r.range(1, max_len as i64 + 1) as usize;
    let insts: Vec<PendingInst> = (0..len)
        .map(|i| {
            let crit = if r.chance(0.5) {
                Some(r.index(2) as u8)
            } else {
                None
            };
            PendingInst {
                seq: i as u64,
                index: i as u32,
                pc: 0x1000 + 4 * i as u64,
                inst: arb_inst(r),
                profile: ProfileFields::default(),
                tc_loc: None,
                feedback: ExecFeedback {
                    critical_src: crit,
                    critical_forwarded: crit.is_some(),
                    ..ExecFeedback::default()
                },
                taken: None,
            }
        })
        .collect();
    RawTrace::analyze(insts)
}

fn assert_valid_placement(placement: &[u8], n: usize, geom: &ClusterGeometry) {
    assert_eq!(placement.len(), n);
    let capacity = geom.total_slots();
    let mut used = vec![false; capacity];
    for &s in placement {
        assert!((s as usize) < capacity, "slot {s} out of range");
        assert!(!used[s as usize], "slot {s} assigned twice");
        used[s as usize] = true;
    }
    // Per-cluster occupancy can never exceed slots_per_cluster by
    // construction of slots, but check it anyway for documentation value.
    let mut per = vec![0u8; geom.clusters as usize];
    for &s in placement {
        per[geom.cluster_of_slot(s) as usize] += 1;
    }
    assert!(per.iter().all(|&c| c <= geom.slots_per_cluster));
}

#[test]
fn baseline_is_the_identity() {
    for n in 1usize..=16 {
        let p = baseline_placement(n);
        assert_eq!(p, (0..n as u8).collect::<Vec<_>>());
    }
}

#[test]
fn friendly_placements_are_valid() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0xF1 ^ case);
        let trace = arb_trace(&mut r, 16);
        let geom = ClusterGeometry::default();
        for order in [SlotFillOrder::Sequential, SlotFillOrder::MiddleFirst] {
            let p = friendly_placement(&trace, &geom, order);
            assert_valid_placement(&p, trace.len(), &geom);
        }
    }
}

#[test]
fn friendly_handles_two_cluster_geometry() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0xF2 ^ case);
        let trace = arb_trace(&mut r, 8);
        let geom = ClusterGeometry {
            clusters: 2,
            slots_per_cluster: 4,
            ..ClusterGeometry::default()
        };
        let p = friendly_placement(&trace, &geom, SlotFillOrder::Sequential);
        assert_valid_placement(&p, trace.len(), &geom);
    }
}

#[test]
fn fdrt_placements_are_valid() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0xF3 ^ case);
        let geom = ClusterGeometry::default();
        let mut assigner = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        for _ in 0..r.range(1, 6) {
            let mut t = arb_trace(&mut r, 16);
            let p = assigner.assign(&mut t, &geom, &mut store);
            assert_valid_placement(&p, t.len(), &geom);
        }
    }
}

#[test]
fn fdrt_option_counts_are_conserved() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0xF4 ^ case);
        let geom = ClusterGeometry::default();
        let mut assigner = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let mut total = 0u64;
        for _ in 0..r.range(1, 6) {
            let mut t = arb_trace(&mut r, 16);
            total += t.len() as u64;
            assigner.assign(&mut t, &geom, &mut store);
        }
        let s = assigner.stats();
        assert_eq!(
            s.options.iter().sum::<u64>() + s.skipped,
            total,
            "case {case}"
        );
    }
}

#[test]
fn intra_trace_analysis_is_well_formed() {
    for case in 0..CASES {
        let mut r = Pcg32::seed_from_u64(0xF5 ^ case);
        let trace = arb_trace(&mut r, 16);
        for (i, producers) in trace.intra_producers.iter().enumerate() {
            for p in producers.iter().flatten() {
                // A producer is strictly older and actually writes the
                // register the consumer reads.
                assert!((*p as usize) < i);
                let dest = trace.insts[*p as usize].inst.dest;
                assert!(dest.is_some());
                let consumed: Vec<_> = trace.insts[i].inst.sources().collect();
                assert!(consumed.contains(&dest.unwrap()));
            }
        }
        // has_intra_consumer agrees with intra_producers.
        for (w, &flag) in trace.has_intra_consumer.iter().enumerate() {
            let referenced = trace
                .intra_producers
                .iter()
                .any(|ps| ps.iter().flatten().any(|&p| p as usize == w));
            assert_eq!(flag, referenced, "case {case} slot {w}");
        }
    }
}

#[test]
fn pinned_chain_state_never_changes_role_back() {
    // Once a slot is a Leader under pinning, further assigns must not
    // demote it or move its cluster.
    use ctcp::tracecache::TcLocation;
    let geom = ClusterGeometry::default();
    let mut assigner = FdrtAssigner::new(FdrtConfig::default());
    let mut store = MapChainStore::new();
    let loc = TcLocation {
        line_id: 1,
        slot: 0,
    };
    store.insert(loc, ProfileFields::default());

    for round in 0..10u8 {
        let producer = ctcp::tracecache::ProducerInfo {
            pc: 0x500,
            cluster: round % 4, // producer "executes" somewhere new each time
            same_trace: false,
            role: ChainRole::None,
            chain_cluster: None,
            tc_location: Some(loc),
        };
        let mut insts = vec![PendingInst {
            seq: 0,
            index: 0,
            pc: 0x1000,
            inst: Instruction::new(Opcode::Add, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0),
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback {
                executed_cluster: 0,
                src_producers: [Some(producer), None],
                critical_src: Some(0),
                critical_forwarded: true,
            },
            taken: None,
        }];
        let mut t = RawTrace::analyze(std::mem::take(&mut insts));
        assigner.assign(&mut t, &geom, &mut store);
        let p = store.get(loc).unwrap();
        assert_eq!(p.role, ChainRole::Leader);
        // Cluster pinned at the first promotion (round 0 -> cluster 0).
        assert_eq!(p.chain_cluster, Some(0));
    }
}
