//! Property-based tests of the retire-time placement strategies: for
//! *any* trace, every strategy must produce a valid physical placement
//! (injective into the line, within per-cluster capacity), and chain
//! state must evolve monotonically under pinning.

use ctcp::core::assign::{
    baseline_placement, friendly_placement, FdrtAssigner, FdrtConfig, MapChainStore,
    SlotFillOrder,
};
use ctcp::core::ClusterGeometry;
use ctcp::isa::{Instruction, Opcode, Reg};
use ctcp::tracecache::{ChainRole, ExecFeedback, PendingInst, ProfileFields, RawTrace};
use proptest::prelude::*;

/// Generates a random (possibly dependent) instruction.
fn arb_inst() -> impl proptest::strategy::Strategy<Value = Instruction> {
    (0u8..5, 0u8..8, 0u8..8, 0u8..8).prop_map(|(kind, d, a, b)| {
        let (d, a, b) = (Reg::int(d), Reg::int(a), Reg::int(b));
        match kind {
            0 => Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0),
            1 => Instruction::new(Opcode::Xor, Some(d), Some(a), Some(b), 0),
            2 => Instruction::new(Opcode::Mul, Some(d), Some(a), Some(b), 0),
            3 => Instruction::new(Opcode::Ld, Some(d), Some(a), None, 8),
            _ => Instruction::new(Opcode::St, None, Some(a), Some(b), 8),
        }
    })
}

fn arb_trace(max_len: usize) -> impl proptest::strategy::Strategy<Value = RawTrace> {
    proptest::collection::vec((arb_inst(), proptest::option::of(0u8..2)), 1..=max_len).prop_map(
        |items| {
            let insts: Vec<PendingInst> = items
                .into_iter()
                .enumerate()
                .map(|(i, (inst, crit))| PendingInst {
                    seq: i as u64,
                    index: i as u32,
                    pc: 0x1000 + 4 * i as u64,
                    inst,
                    profile: ProfileFields::default(),
                    tc_loc: None,
                    feedback: ExecFeedback {
                        critical_src: crit,
                        critical_forwarded: crit.is_some(),
                        ..ExecFeedback::default()
                    },
                    taken: None,
                })
                .collect();
            RawTrace::analyze(insts)
        },
    )
}

fn assert_valid_placement(placement: &[u8], n: usize, geom: &ClusterGeometry) {
    assert_eq!(placement.len(), n);
    let capacity = geom.total_slots();
    let mut used = vec![false; capacity];
    for &s in placement {
        assert!((s as usize) < capacity, "slot {s} out of range");
        assert!(!used[s as usize], "slot {s} assigned twice");
        used[s as usize] = true;
    }
    // Per-cluster occupancy can never exceed slots_per_cluster by
    // construction of slots, but check it anyway for documentation value.
    let mut per = vec![0u8; geom.clusters as usize];
    for &s in placement {
        per[geom.cluster_of_slot(s) as usize] += 1;
    }
    assert!(per.iter().all(|&c| c <= geom.slots_per_cluster));
}

proptest! {
    #[test]
    fn baseline_is_the_identity(n in 1usize..=16) {
        let p = baseline_placement(n);
        prop_assert_eq!(p, (0..n as u8).collect::<Vec<_>>());
    }

    #[test]
    fn friendly_placements_are_valid(trace in arb_trace(16)) {
        let geom = ClusterGeometry::default();
        for order in [SlotFillOrder::Sequential, SlotFillOrder::MiddleFirst] {
            let p = friendly_placement(&trace, &geom, order);
            assert_valid_placement(&p, trace.len(), &geom);
        }
    }

    #[test]
    fn friendly_handles_two_cluster_geometry(trace in arb_trace(8)) {
        let geom = ClusterGeometry {
            clusters: 2,
            slots_per_cluster: 4,
            ..ClusterGeometry::default()
        };
        let p = friendly_placement(&trace, &geom, SlotFillOrder::Sequential);
        assert_valid_placement(&p, trace.len(), &geom);
    }

    #[test]
    fn fdrt_placements_are_valid(traces in proptest::collection::vec(arb_trace(16), 1..6)) {
        let geom = ClusterGeometry::default();
        let mut assigner = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        for mut t in traces {
            let p = assigner.assign(&mut t, &geom, &mut store);
            assert_valid_placement(&p, t.len(), &geom);
        }
    }

    #[test]
    fn fdrt_option_counts_are_conserved(traces in proptest::collection::vec(arb_trace(16), 1..6)) {
        let geom = ClusterGeometry::default();
        let mut assigner = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let mut total = 0u64;
        for mut t in traces {
            total += t.len() as u64;
            assigner.assign(&mut t, &geom, &mut store);
        }
        let s = assigner.stats();
        prop_assert_eq!(s.options.iter().sum::<u64>() + s.skipped, total);
    }

    #[test]
    fn intra_trace_analysis_is_well_formed(trace in arb_trace(16)) {
        for (i, producers) in trace.intra_producers.iter().enumerate() {
            for p in producers.iter().flatten() {
                // A producer is strictly older and actually writes the
                // register the consumer reads.
                prop_assert!((*p as usize) < i);
                let dest = trace.insts[*p as usize].inst.dest;
                prop_assert!(dest.is_some());
                let consumed: Vec<_> = trace.insts[i].inst.sources().collect();
                prop_assert!(consumed.contains(&dest.unwrap()));
            }
        }
        // has_intra_consumer agrees with intra_producers.
        for (w, &flag) in trace.has_intra_consumer.iter().enumerate() {
            let referenced = trace
                .intra_producers
                .iter()
                .any(|ps| ps.iter().flatten().any(|&p| p as usize == w));
            prop_assert_eq!(flag, referenced);
        }
    }
}

#[test]
fn pinned_chain_state_never_changes_role_back() {
    // Once a slot is a Leader under pinning, further assigns must not
    // demote it or move its cluster.
    use ctcp::tracecache::TcLocation;
    let geom = ClusterGeometry::default();
    let mut assigner = FdrtAssigner::new(FdrtConfig::default());
    let mut store = MapChainStore::new();
    let loc = TcLocation { line_id: 1, slot: 0 };
    store.insert(loc, ProfileFields::default());

    for round in 0..10u8 {
        let producer = ctcp::tracecache::ProducerInfo {
            pc: 0x500,
            cluster: round % 4, // producer "executes" somewhere new each time
            same_trace: false,
            role: ChainRole::None,
            chain_cluster: None,
            tc_location: Some(loc),
        };
        let mut insts = vec![PendingInst {
            seq: 0,
            index: 0,
            pc: 0x1000,
            inst: Instruction::new(Opcode::Add, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0),
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback {
                executed_cluster: 0,
                src_producers: [Some(producer), None],
                critical_src: Some(0),
                critical_forwarded: true,
            },
            taken: None,
        }];
        let mut t = RawTrace::analyze(std::mem::take(&mut insts));
        assigner.assign(&mut t, &geom, &mut store);
        let p = store.get(loc).unwrap();
        assert_eq!(p.role, ChainRole::Leader);
        // Cluster pinned at the first promotion (round 0 -> cluster 0).
        assert_eq!(p.chain_cluster, Some(0));
    }
}
