//! End-to-end properties of the experiment harness over real
//! benchmarks: parallel execution must be invisible in the output, and
//! the memoizing result store must make a second identical run free.

use ctcp::harness::{Harness, Job, ResultStore};
use ctcp::sim::{SimConfig, SimReport, Strategy};
use ctcp::workload::Benchmark;
use std::path::PathBuf;
use std::sync::Arc;

const INSTS: u64 = 8_000;

/// The grid both tests sweep: two benchmarks × three strategies.
fn grid() -> Vec<Job> {
    let mut jobs = Vec::new();
    for name in ["gzip", "twolf"] {
        let bench = Benchmark::by_name(name).expect("preset exists");
        let program = Arc::new(bench.program());
        for strategy in [
            Strategy::Baseline,
            Strategy::IssueTime { latency: 4 },
            Strategy::Fdrt { pinning: true },
        ] {
            let config = SimConfig {
                strategy,
                max_insts: INSTS,
                ..SimConfig::default()
            };
            jobs.push(Job::new(name, Arc::clone(&program), config));
        }
    }
    jobs
}

/// Renders reports the way an experiment table would: every numeric
/// field participates, so any divergence between runs is caught.
fn table(jobs: &[Job], reports: &[SimReport]) -> String {
    jobs.iter()
        .zip(reports)
        .map(|(j, r)| {
            format!(
                "{} {} cycles={} ipc={:.6} tc={:.6} intra={:.6} dist={:.6}\n",
                j.workload,
                r.strategy,
                r.cycles,
                r.ipc,
                r.tc_inst_fraction(),
                r.metrics.fwd.intra_cluster_fraction(),
                r.metrics.fwd.mean_distance()
            )
        })
        .collect()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctcp-e2e-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn tables_are_byte_identical_across_job_counts() {
    let jobs = grid();
    let serial = Harness::new().jobs(1).progress(false).run(&jobs);
    let parallel = Harness::new().jobs(8).progress(false).run(&jobs);
    assert_eq!(table(&jobs, &serial), table(&jobs, &parallel));
}

#[test]
fn warm_store_resume_hits_every_cell() {
    let dir = scratch_dir("resume");
    let jobs = grid();

    let mut cold = Harness::new()
        .jobs(4)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    let cold_table = table(&jobs, &cold.run(&jobs));
    let cold_stats = cold.last_batch();
    assert_eq!(cold_stats.simulated, jobs.len());
    assert_eq!(cold_stats.store_hits, 0);
    let store = cold.store_stats().unwrap();
    assert_eq!(store.puts, jobs.len() as u64);

    // A fresh harness (fresh process, as far as the store can tell)
    // must answer the whole grid from disk and simulate nothing.
    let mut warm = Harness::new()
        .jobs(4)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    let warm_table = table(&jobs, &warm.run(&jobs));
    let warm_stats = warm.last_batch();
    assert_eq!(warm_stats.simulated, 0);
    assert_eq!(warm_stats.store_hits, jobs.len());
    let store = warm.store_stats().unwrap();
    assert_eq!(store.hits, jobs.len() as u64);
    assert_eq!(store.puts, 0);

    assert_eq!(cold_table, warm_table);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_store_resumes_only_whats_missing() {
    let dir = scratch_dir("partial");
    let jobs = grid();

    // Simulate an interrupted sweep: only the first half was stored.
    let mut first = Harness::new()
        .jobs(2)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    first.run(&jobs[..3]);

    let mut resumed = Harness::new()
        .jobs(2)
        .progress(false)
        .with_store(ResultStore::open(&dir).unwrap());
    let reports = resumed.run(&jobs);
    assert_eq!(resumed.last_batch().store_hits, 3);
    assert_eq!(resumed.last_batch().simulated, 3);
    assert_eq!(reports.len(), jobs.len());

    // The resumed table equals a from-scratch serial run.
    let scratch = Harness::new().jobs(1).progress(false).run(&jobs);
    assert_eq!(table(&jobs, &reports), table(&jobs, &scratch));
    std::fs::remove_dir_all(&dir).ok();
}
