//! # ctcp — a clustered trace cache processor simulator
//!
//! A from-scratch, cycle-level reproduction of **Bhargava & John,
//! "Improving Dynamic Cluster Assignment for Clustered Trace Cache
//! Processors" (ISCA 2003)**: a 16-wide out-of-order processor built from
//! four 4-wide execution clusters fed by a trace cache, with all four of
//! the paper's dynamic cluster-assignment strategies — baseline slot
//! steering, issue-time dependency steering, Friendly et al.'s retire-time
//! reordering, and the proposed feedback-directed retire-time (FDRT)
//! strategy with inter-trace cluster chaining.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. See the individual crates for details:
//!
//! * [`isa`] — the TRISC instruction set and functional executor,
//! * [`workload`] — synthetic SPECint/MediaBench-class benchmark
//!   generators,
//! * [`frontend`] — branch prediction and the instruction cache,
//! * [`tracecache`] — the trace cache and fill unit,
//! * [`memory`] — the data memory hierarchy,
//! * [`core`] — the clustered out-of-order engine and assignment
//!   strategies,
//! * [`sim`] — the whole-processor simulator and experiment API,
//! * [`harness`] — the parallel sweep runner with its memoizing result
//!   store,
//! * [`serve`] — the resident sweep service (hand-rolled HTTP/1.1 over
//!   `std::net`, streaming progress, shared warm cache),
//! * [`telemetry`] — the zero-overhead-when-off pipeline observability
//!   layer (metrics registry, event recorder, exporters).
//!
//! ## Example
//!
//! ```
//! use ctcp::sim::{Simulation, Strategy};
//! use ctcp::workload::Benchmark;
//!
//! let program = Benchmark::by_name("gzip").unwrap().program();
//! let base = Simulation::builder(&program)
//!     .strategy(Strategy::Baseline)
//!     .max_insts(20_000)
//!     .build()
//!     .unwrap()
//!     .run();
//! let fdrt = Simulation::builder(&program)
//!     .strategy(Strategy::Fdrt { pinning: true })
//!     .max_insts(20_000)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(fdrt.instructions == base.instructions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ctcp_core as core;
pub use ctcp_frontend as frontend;
pub use ctcp_harness as harness;
pub use ctcp_isa as isa;
pub use ctcp_memory as memory;
pub use ctcp_serve as serve;
pub use ctcp_sim as sim;
pub use ctcp_telemetry as telemetry;
pub use ctcp_tracecache as tracecache;
pub use ctcp_workload as workload;
